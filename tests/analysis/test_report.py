"""Analysis/report helper tests."""

import pytest

from repro.analysis.report import (
    cdf_percentiles,
    format_table,
    reduction_percent,
    speedup,
    stats_row,
)
from repro.sim.recorder import LatencyStats


class TestStatsRow:
    def test_microsecond_fields(self):
        stats = LatencyStats(count=10, average_ns=423_000, minimum_ns=100_000,
                             maximum_ns=515_000, stddev_ns=39_000)
        row = stats_row(stats)
        assert row["count"] == 10
        assert row["avg_us"] == pytest.approx(423.0)
        assert row["max_us"] == pytest.approx(515.0)
        assert row["jitter_us"] == pytest.approx(39.0)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in text and "3.2" in text and "xyz" in text

    def test_empty_rows(self):
        text = format_table(["h1"], [])
        assert "h1" in text


class TestRatios:
    def test_reduction(self):
        assert reduction_percent(100.0, 12.0) == pytest.approx(88.0)

    def test_speedup(self):
        assert speedup(1000.0, 100.0) == pytest.approx(10.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            reduction_percent(0, 5)
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestCdfPercentiles:
    def test_samples_fractions(self):
        cdf = [(10, 0.25), (20, 0.5), (30, 0.75), (40, 1.0)]
        result = cdf_percentiles(cdf, fractions=(0.5, 0.9, 1.0))
        assert result[0.5] == 20
        assert result[0.9] == 40
        assert result[1.0] == 40

    def test_empty_cdf(self):
        assert cdf_percentiles([], fractions=(0.5,)) == {0.5: 0}
