"""Resource-metric tests (bandwidth reservation, GCL table cost)."""

import pytest

from repro.analysis.resources import (
    fits_hardware,
    gcl_table_sizes,
    link_reservations,
    max_gcl_table_size,
    reservation_overhead,
)
from repro.core.baselines import schedule_etsn
from repro.core.gcl import build_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS


def _schedule(topo, share=True, with_ect=True):
    tct = [Stream(
        name="t1", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(4),
        priority=Priorities.SH_PL if share else Priorities.NSH_PL,
        length_bytes=2 * 1500, period_ns=milliseconds(4), share=share,
    )]
    ects = []
    if with_ect:
        ects.append(EctStream("e", "D2", "D3",
                              min_interevent_ns=milliseconds(16),
                              length_bytes=1500, possibilities=4))
    return schedule_etsn(topo, tct, ects)


class TestLinkReservations:
    def test_message_time_matches_stream(self, star_topology):
        schedule = _schedule(star_topology, with_ect=False)
        reservations = link_reservations(schedule)
        cycle = schedule.hyperperiod_ns
        r = reservations[("D1", "SW1")]
        # 2 MTU frames per 4 ms period over the hyperperiod
        assert r.message_ns == 2 * MTU_WIRE_NS * (cycle // milliseconds(4))
        assert r.extra_ns == 0
        assert r.probabilistic_ns == 0

    def test_extras_and_prob_split(self, star_topology):
        schedule = _schedule(star_topology)
        r = link_reservations(schedule)[("SW1", "D3")]
        assert r.extra_ns > 0  # prudent reservation acted here
        assert r.probabilistic_ns > 0  # possibility slots exist
        assert 0 < r.tct_fraction < 1

    def test_overhead_zero_without_sharing(self, star_topology):
        schedule = _schedule(star_topology, share=False)
        assert reservation_overhead(schedule) == 0.0

    def test_overhead_positive_with_sharing(self, star_topology):
        schedule = _schedule(star_topology)
        overhead = reservation_overhead(schedule)
        assert 0 < overhead < 0.5


class TestGclTables:
    def test_sizes_per_port(self, star_topology):
        schedule = _schedule(star_topology)
        gcl = build_gcl(schedule, mode="etsn")
        sizes = gcl_table_sizes(gcl)
        assert set(sizes) == set(gcl.ports)
        assert all(size >= 1 for size in sizes.values())

    def test_strict_mode_needs_more_entries(self, star_topology):
        """Materializing every possibility window costs table rows."""
        schedule = _schedule(star_topology)
        loose = max_gcl_table_size(build_gcl(schedule, mode="etsn"))
        strict = max_gcl_table_size(build_gcl(schedule, mode="etsn-strict"))
        assert strict >= loose

    def test_fits_hardware(self, star_topology):
        schedule = _schedule(star_topology)
        gcl = build_gcl(schedule, mode="etsn")
        assert fits_hardware(gcl, table_limit=1024)
        assert not fits_hardware(gcl, table_limit=1)
        with pytest.raises(ValueError):
            fits_hardware(gcl, table_limit=0)

    def test_realistic_deployment_fits_real_switches(self):
        """The paper's Fig. 13 workload at 50% load must fit a typical
        1024-entry Qbv table."""
        from repro.core.gcl import build_gcl as _build
        from repro.experiments import simulation_workload

        workload = simulation_workload(0.5, seed=1)
        schedule = schedule_etsn(workload.topology, workload.tct_streams,
                                 workload.ect_streams)
        gcl = _build(schedule, mode="etsn")
        assert fits_hardware(gcl, table_limit=1024)
