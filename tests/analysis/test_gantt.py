"""ASCII Gantt renderer tests."""

import pytest

from repro.analysis.gantt import EMPTY, EXTRA_FILL, FILL, OVERLAP, legend, render_gantt, render_link_gantt
from repro.core.baselines import schedule_etsn


@pytest.fixture
def schedule(paper_example):
    topo, s1, s2 = paper_example
    return schedule_etsn(topo, [s1], [s2], backend="smt")


class TestRenderLink:
    def test_rows_for_every_stream(self, schedule):
        text = render_link_gantt(schedule, ("SW1", "D3"), width=60)
        for name in ("s1", "s2#ps1", "s2#ps5", "(all)"):
            assert name in text

    def test_width_respected(self, schedule):
        text = render_link_gantt(schedule, ("SW1", "D3"), width=40)
        rows = [line for line in text.splitlines() if "|" in line]
        for row in rows:
            body = row.split("|")[1]
            assert len(body) == 40

    def test_superposition_marked(self, schedule):
        text = render_link_gantt(schedule, ("SW1", "D3"), width=60)
        combined = [l for l in text.splitlines() if "(all)" in l][0]
        assert OVERLAP in combined

    def test_extras_marked(self, schedule):
        text = render_link_gantt(schedule, ("SW1", "D3"), width=60)
        s1_row = [l for l in text.splitlines() if l.strip().startswith("s1 ")][0]
        assert EXTRA_FILL in s1_row

    def test_wrapped_slot_rendered(self, schedule):
        """A possibility scheduled past the period end must appear at the
        start of the cycle."""
        text = render_link_gantt(schedule, ("SW1", "D3"), width=60)
        late_rows = [
            line for line in text.splitlines()
            if line.strip().startswith("s2#ps5")
        ]
        assert late_rows and FILL in late_rows[0]

    def test_empty_link(self, schedule):
        assert "no slots" in render_link_gantt(schedule, ("D3", "SW1"))

    def test_occupancy_matches_slots(self, schedule):
        """Every stream row's filled fraction approximates duration/cycle."""
        width = 100
        text = render_link_gantt(schedule, ("D1", "SW1"), width=width)
        s1_row = [l for l in text.splitlines() if l.strip().startswith("s1 ")][0]
        body = s1_row.split("|")[1]
        filled = sum(1 for c in body if c != EMPTY)
        # s1 sends 3 MTU frames per 5-frame period: 60% of the cycle
        assert 0.5 <= filled / width <= 0.72


class TestRenderAll:
    def test_all_links_present(self, schedule):
        text = render_gantt(schedule, width=50)
        for link in ("<D1,SW1>", "<D2,SW1>", "<SW1,D3>"):
            assert link in text

    def test_subset(self, schedule):
        text = render_gantt(schedule, links=[("D1", "SW1")], width=50)
        assert "<D1,SW1>" in text
        assert "<SW1,D3>" not in text

    def test_legend_mentions_all_glyphs(self):
        text = legend()
        for glyph in (FILL, EXTRA_FILL, OVERLAP, EMPTY):
            assert glyph in text
