"""IEC/IEEE 60802-style traffic generator tests."""

import pytest

from repro.model.stream import Priorities, StreamError
from repro.model.units import milliseconds
from repro.traffic.generator import TrafficConfig, generate_tct

PERIODS = [milliseconds(4), milliseconds(8), milliseconds(16)]


def _config(**kwargs):
    base = dict(num_streams=10, periods_ns=PERIODS, target_load=0.5, seed=1)
    base.update(kwargs)
    return TrafficConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(num_streams=0),
        dict(periods_ns=[]),
        dict(target_load=0.0),
        dict(target_load=1.0),
        dict(num_nonshared=11),
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            _config(**kwargs)


class TestGeneration:
    def test_stream_count_and_naming(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology, _config())
        assert len(traffic.streams) == 10
        assert [s.name for s in traffic.streams] == [f"tct{i}" for i in range(1, 11)]

    def test_periods_from_the_set(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology, _config())
        assert all(s.period_ns in PERIODS for s in traffic.streams)

    def test_endpoints_are_devices(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology, _config())
        devices = {d.name for d in two_switch_topology.devices}
        for s in traffic.streams:
            assert s.source in devices and s.destination in devices
            assert s.source != s.destination

    def test_load_targeting(self, two_switch_topology):
        for target in (0.25, 0.50):
            traffic = generate_tct(two_switch_topology, _config(target_load=target))
            assert traffic.achieved_load <= target
            # the next payload step would overshoot, so we are close
            assert traffic.achieved_load > target * 0.9

    def test_link_loads_cover_used_links(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology, _config())
        used = {link.key for s in traffic.streams for link in s.path}
        assert set(traffic.link_loads) == used
        assert traffic.most_loaded_link in used
        assert max(traffic.link_loads.values()) == traffic.achieved_load

    def test_seed_reproducible(self, two_switch_topology):
        a = generate_tct(two_switch_topology, _config(seed=7))
        b = generate_tct(two_switch_topology, _config(seed=7))
        assert [s.name for s in a.streams] == [s.name for s in b.streams]
        assert [(s.source, s.destination, s.period_ns) for s in a.streams] == \
               [(s.source, s.destination, s.period_ns) for s in b.streams]
        assert a.payload_bytes == b.payload_bytes

    def test_seeds_differ(self, two_switch_topology):
        a = generate_tct(two_switch_topology, _config(seed=1))
        b = generate_tct(two_switch_topology, _config(seed=2))
        assert [(s.source, s.destination) for s in a.streams] != \
               [(s.source, s.destination) for s in b.streams]

    def test_shared_priorities(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology, _config(share=True))
        for s in traffic.streams:
            assert s.share
            assert Priorities.is_shared_tct(s.priority)

    def test_nonshared_prefix(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology,
                               _config(share=True, num_nonshared=4))
        flags = [s.share for s in traffic.streams]
        assert flags == [False] * 4 + [True] * 6
        for s in traffic.streams[:4]:
            assert Priorities.is_nonshared_tct(s.priority)

    def test_implicit_deadlines(self, two_switch_topology):
        traffic = generate_tct(two_switch_topology, _config())
        assert all(s.e2e_ns == s.period_ns for s in traffic.streams)

    def test_unreachable_high_load(self, two_switch_topology):
        config = _config(num_streams=2, target_load=0.9,
                         max_frames_per_message=1)
        with pytest.raises(StreamError):
            generate_tct(two_switch_topology, config)

    def test_unreachable_low_load(self, two_switch_topology):
        config = _config(num_streams=100, target_load=0.01)
        with pytest.raises(StreamError):
            generate_tct(two_switch_topology, config)

    def test_device_restriction(self, two_switch_topology):
        config = _config(devices=["D1", "D3"])
        traffic = generate_tct(two_switch_topology, config)
        for s in traffic.streams:
            assert {s.source, s.destination} == {"D1", "D3"}
