"""Event occurrence process tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.units import milliseconds
from repro.traffic.events import (
    burst_events,
    poisson_events,
    uniform_gap_events,
    validate_min_spacing,
)

HORIZON = milliseconds(2000)
MIN_GAP = milliseconds(16)


class TestUniformGap:
    def test_respects_min_spacing(self):
        times = uniform_gap_events(HORIZON, MIN_GAP, seed=1)
        validate_min_spacing(times, MIN_GAP)

    def test_within_horizon(self):
        times = uniform_gap_events(HORIZON, MIN_GAP, seed=1)
        assert all(0 <= t < HORIZON for t in times)
        assert len(times) > 10

    def test_phase_coverage(self):
        """Occurrence phases must sweep the cycle (the paper's 'uniform
        distribution' of occurrence times)."""
        times = uniform_gap_events(milliseconds(20_000), MIN_GAP, seed=3)
        phases = [t % MIN_GAP for t in times]
        quartile = MIN_GAP // 4
        buckets = [sum(1 for p in phases if q * quartile <= p < (q + 1) * quartile)
                   for q in range(4)]
        assert all(b > 0 for b in buckets)
        assert max(buckets) < 3 * min(buckets) + 10

    def test_zero_jitter_is_strictly_periodic(self):
        times = uniform_gap_events(HORIZON, MIN_GAP, seed=5, gap_jitter_ns=0)
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert gaps == {MIN_GAP}

    def test_rejects_bad_min(self):
        with pytest.raises(ValueError):
            uniform_gap_events(HORIZON, 0)


class TestPoisson:
    def test_respects_min_spacing(self):
        times = poisson_events(HORIZON, MIN_GAP, mean_gap_ns=2 * MIN_GAP, seed=2)
        validate_min_spacing(times, MIN_GAP)

    def test_mean_gap_roughly_matches(self):
        times = poisson_events(milliseconds(50_000), MIN_GAP,
                               mean_gap_ns=3 * MIN_GAP, seed=4)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert 2 * MIN_GAP < mean < 4 * MIN_GAP

    def test_rejects_mean_below_min(self):
        with pytest.raises(ValueError):
            poisson_events(HORIZON, MIN_GAP, mean_gap_ns=MIN_GAP - 1)


class TestBurst:
    def test_respects_min_spacing(self):
        times = burst_events(HORIZON, MIN_GAP, burst_size=4,
                             burst_gap_ns=8 * MIN_GAP, seed=1)
        validate_min_spacing(times, MIN_GAP)

    def test_contains_back_to_back_events(self):
        """The stress property: consecutive events at exactly the minimum
        spacing must occur (what prudent reservation budgets for)."""
        times = burst_events(HORIZON, MIN_GAP, burst_size=4,
                             burst_gap_ns=8 * MIN_GAP, seed=1)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert MIN_GAP in gaps

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            burst_events(HORIZON, MIN_GAP, burst_size=0, burst_gap_ns=8 * MIN_GAP)
        with pytest.raises(ValueError):
            burst_events(HORIZON, MIN_GAP, burst_size=2, burst_gap_ns=MIN_GAP - 1)


class TestValidateMinSpacing:
    def test_accepts_valid(self):
        validate_min_spacing([0, 10, 25], 10)

    def test_rejects_violation(self):
        with pytest.raises(ValueError):
            validate_min_spacing([0, 5], 10)

    def test_empty_and_singleton_ok(self):
        validate_min_spacing([], 10)
        validate_min_spacing([3], 10)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31), st.sampled_from([milliseconds(5), milliseconds(16)]))
def test_all_processes_respect_spacing(seed, min_gap):
    for times in (
        uniform_gap_events(HORIZON, min_gap, seed=seed),
        poisson_events(HORIZON, min_gap, mean_gap_ns=2 * min_gap, seed=seed),
        burst_events(HORIZON, min_gap, burst_size=3, burst_gap_ns=4 * min_gap,
                     seed=seed),
    ):
        validate_min_spacing(times, min_gap)
        assert times == sorted(times)
