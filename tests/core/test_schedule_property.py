"""Property-based tests: random scenarios through both scheduler backends.

Every schedule either validates against the independent Eq. 1-7 checker
or the backend raises InfeasibleError — never an invalid schedule, never
a crash.  Where both backends run, their feasibility verdicts must agree
(the heuristic is allowed to be incomplete only in the conservative
direction: it may miss feasible schedules on pathological instances, so
agreement is asserted one-way: SMT-infeasible implies heuristic fails).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heuristic import schedule_heuristic
from repro.core.schedule import InfeasibleError, validate
from repro.core.smt_scheduler import schedule_smt
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import milliseconds


def _small_topology():
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for d, sw in (("D1", "SW1"), ("D2", "SW1"), ("D3", "SW2"), ("D4", "SW2")):
        topo.add_device(d)
        topo.add_link(d, sw)
    topo.add_link("SW1", "SW2")
    return topo


DEVICES = ["D1", "D2", "D3", "D4"]
PERIODS = [milliseconds(4), milliseconds(8), milliseconds(16)]


@st.composite
def scenario(draw):
    topo = _small_topology()
    num_tct = draw(st.integers(0, 5))
    streams = []
    for i in range(num_tct):
        src = draw(st.sampled_from(DEVICES))
        dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
        period = draw(st.sampled_from(PERIODS))
        share = draw(st.booleans())
        length = draw(st.sampled_from([100, 800, 1500, 3000]))
        streams.append(Stream(
            name=f"t{i}",
            path=tuple(topo.shortest_path(src, dst)),
            e2e_ns=period,
            priority=Priorities.SH_PL if share else Priorities.NSH_PL,
            length_bytes=length,
            period_ns=period,
            share=share,
        ))
    ects = []
    if draw(st.booleans()):
        src = draw(st.sampled_from(DEVICES))
        dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
        ects.append(EctStream(
            name="e0", source=src, destination=dst,
            min_interevent_ns=milliseconds(16),
            length_bytes=draw(st.sampled_from([1500, 3000])),
            possibilities=draw(st.sampled_from([2, 4, 8])),
        ))
    return topo, streams, ects


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario())
def test_heuristic_output_always_validates(case):
    topo, streams, ects = case
    try:
        schedule = schedule_heuristic(topo, streams, ects)
    except InfeasibleError:
        return
    validate(schedule)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario())
def test_smt_output_always_validates(case):
    topo, streams, ects = case
    try:
        schedule = schedule_smt(topo, streams, ects)
    except InfeasibleError:
        return
    validate(schedule)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario())
def test_smt_infeasible_implies_heuristic_infeasible(case):
    """The heuristic must never 'succeed' where the complete SMT search
    proves no schedule exists (that would mean an unsound schedule)."""
    topo, streams, ects = case
    try:
        schedule_smt(topo, streams, ects)
        smt_feasible = True
    except InfeasibleError:
        smt_feasible = False
    if not smt_feasible:
        with pytest.raises(InfeasibleError):
            schedule_heuristic(topo, streams, ects)
