"""Online (incremental) scheduling tests."""

import random

import pytest

from repro.core.baselines import schedule_etsn
from repro.core.incremental import add_ect_stream, add_tct_stream, remove_stream
from repro.core.schedule import InfeasibleError, validate
from repro.model.stream import EctStream, Priorities, Stream, TctRequirement
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS


def _tct(topo, name, src="D1", dst="D3", share=False, period=None, length=1500):
    period = period or milliseconds(8)
    return Stream(
        name=name, path=tuple(topo.shortest_path(src, dst)),
        e2e_ns=period, priority=Priorities.SH_PL if share else Priorities.NSH_PL,
        length_bytes=length, period_ns=period, share=share,
    )


def _base_schedule(topo):
    return schedule_etsn(topo, [_tct(topo, "base1"),
                                _tct(topo, "base2", src="D2")], [])


class TestAddTct:
    def test_admission_keeps_existing_slots(self, star_topology):
        before = _base_schedule(star_topology)
        frozen = {k: list(v) for k, v in before.slots.items()}
        after = add_tct_stream(before, _tct(star_topology, "new1", src="D2"))
        validate(after)
        for key, slots in frozen.items():
            assert after.slots[key] == slots
        assert after.stream("new1")
        # and the input schedule is untouched
        assert all("new1" != s.name for s in before.streams)

    def test_duplicate_rejected(self, star_topology):
        schedule = _base_schedule(star_topology)
        with pytest.raises(ValueError):
            add_tct_stream(schedule, _tct(star_topology, "base1"))

    def test_admission_control_when_full(self, star_topology):
        period = 6 * MTU_WIRE_NS
        streams = [
            _tct(star_topology, f"s{i}", src="D1" if i % 2 else "D2",
                 period=period)
            for i in range(5)
        ]
        schedule = schedule_etsn(star_topology, streams, [])
        with pytest.raises(InfeasibleError):
            add_tct_stream(schedule, _tct(star_topology, "overload",
                                          src="D2", period=period))
        # rejected admission leaves the schedule valid and unchanged
        validate(schedule)
        assert len(schedule.streams) == 5

    def test_sharing_stream_needs_offline_run(self, star_topology):
        schedule = schedule_etsn(
            star_topology, [_tct(star_topology, "base1")],
            [EctStream("e", "D2", "D3", min_interevent_ns=milliseconds(16),
                       length_bytes=1500, possibilities=4)],
        )
        with pytest.raises(InfeasibleError):
            add_tct_stream(schedule, _tct(star_topology, "shared-new",
                                          src="D2", share=True))

    def test_chain_of_admissions(self, star_topology):
        schedule = _base_schedule(star_topology)
        for i in range(4):
            schedule = add_tct_stream(
                schedule, _tct(star_topology, f"grow{i}", src="D2",
                               period=milliseconds(16)))
        validate(schedule)
        assert schedule.meta["incremental_additions"] == 4


class TestAddEct:
    def test_possibilities_added_and_validated(self, star_topology):
        before = schedule_etsn(
            star_topology,
            [_tct(star_topology, "sh", share=True)],
            [],
        )
        ect = EctStream("alarm", "D2", "D3",
                        min_interevent_ns=milliseconds(16),
                        length_bytes=1500, possibilities=4)
        after = add_ect_stream(before, ect)
        validate(after)
        assert len(after.probabilistic_streams()) == 4
        assert [e.name for e in after.ect_streams] == ["alarm"]

    def test_extras_appended_without_moving_message_slots(self, star_topology):
        before = schedule_etsn(
            star_topology, [_tct(star_topology, "sh", share=True)], [],
        )
        base_slots = {
            key: list(slots) for key, slots in before.slots.items()
        }
        ect = EctStream("alarm", "D2", "D3",
                        min_interevent_ns=milliseconds(16),
                        length_bytes=1500, possibilities=4)
        after = add_ect_stream(before, ect)
        # the pre-existing message slot of "sh" on the overlap link is
        # unchanged; an extra slot was appended after it
        key = ("sh", ("SW1", "D3"))
        assert after.slots[key][0] == base_slots[key][0]
        assert len(after.slots[key]) > len(base_slots[key])
        assert after.slots[key][-1].extra

    def test_duplicate_ect_rejected(self, star_topology):
        before = schedule_etsn(star_topology,
                               [_tct(star_topology, "sh", share=True)], [])
        ect = EctStream("alarm", "D2", "D3",
                        min_interevent_ns=milliseconds(16),
                        length_bytes=1500, possibilities=4)
        mid = add_ect_stream(before, ect)
        with pytest.raises(ValueError):
            add_ect_stream(mid, ect)

    def test_second_ect_stream(self, two_switch_topology):
        before = schedule_etsn(
            two_switch_topology,
            [_tct(two_switch_topology, "sh", src="D1", dst="D4", share=True)],
            [EctStream("e1", "D2", "D4", min_interevent_ns=milliseconds(16),
                       length_bytes=1500, possibilities=4)],
        )
        after = add_ect_stream(
            before,
            EctStream("e2", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
        )
        validate(after)
        assert len(after.ect_streams) == 2
        assert len(after.probabilistic_streams()) == 8


class TestRemove:
    def test_remove_tct(self, star_topology):
        schedule = _base_schedule(star_topology)
        after = remove_stream(schedule, "base2")
        validate(after)
        assert all(s.name != "base2" for s in after.streams)
        assert all(key[0] != "base2" for key in after.slots)

    def test_remove_ect_removes_possibilities(self, star_topology):
        schedule = schedule_etsn(
            star_topology, [_tct(star_topology, "sh", share=True)],
            [EctStream("alarm", "D2", "D3",
                       min_interevent_ns=milliseconds(16),
                       length_bytes=1500, possibilities=4)],
        )
        after = remove_stream(schedule, "alarm")
        validate(after)
        assert not after.probabilistic_streams()
        assert not after.ect_streams

    def test_remove_unknown_raises(self, star_topology):
        with pytest.raises(KeyError):
            remove_stream(_base_schedule(star_topology), "ghost")

    def test_remove_then_readmit(self, star_topology):
        schedule = _base_schedule(star_topology)
        smaller = remove_stream(schedule, "base2")
        again = add_tct_stream(smaller, _tct(star_topology, "base2", src="D2"))
        validate(again)


class TestServiceEquivalence:
    """Equivalence stress: random admit/remove sequences through the
    AdmissionService must end in a schedule that (a) passes the
    independent validator and (b) matches the feasibility verdict of a
    from-scratch ``schedule_etsn`` over the same final stream set."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_storm_matches_offline_feasibility(self, star_topology, seed):
        from repro.service import (AdmissionService, AdmitEct, AdmitTct,
                                   Remove, ScheduleStore, empty_schedule)

        rng = random.Random(seed)
        service = AdmissionService(ScheduleStore(empty_schedule(star_topology)))
        devices = ("D1", "D2", "D3")
        for i in range(80):
            schedule = service.store.schedule
            victims = sorted(
                {s.name for s in schedule.streams if s.parent is None}
                | {e.name for e in schedule.ect_streams}
            )
            roll = rng.random()
            if roll < 0.3 and victims:
                service.submit(Remove(rng.choice(victims)))
            elif roll < 0.4:
                src, dst = rng.sample(devices, 2)
                service.submit(AdmitEct(EctStream(
                    name=f"e{i}", source=src, destination=dst,
                    min_interevent_ns=milliseconds(rng.choice((16, 32))),
                    length_bytes=512, possibilities=2,
                )))
            else:
                src, dst = rng.sample(devices, 2)
                service.submit(AdmitTct(TctRequirement(
                    name=f"t{i}", source=src, destination=dst,
                    period_ns=milliseconds(rng.choice((8, 16))),
                    length_bytes=rng.choice((400, 1500)),
                    priority=Priorities.NSH_PH,
                )))

        final = service.store.schedule
        validate(final)
        # from-scratch re-solve of the surviving population agrees that
        # the set is feasible (same verdict as the accepted online state)
        offline = schedule_etsn(
            star_topology,
            [s for s in final.streams if s.parent is None],
            final.ect_streams,
        )
        validate(offline)
        assert {s.name for s in offline.streams} == {
            s.name for s in final.streams
        }
        assert [e.name for e in offline.ect_streams] == [
            e.name for e in final.ect_streams
        ]
