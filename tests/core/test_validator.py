"""Validator tests: each constraint class must catch tampered schedules."""

import dataclasses

import pytest

from repro.core.heuristic import schedule_heuristic
from repro.core.schedule import (
    ScheduleError,
    earliest_gap_shift,
    periodic_overlap,
    validate,
)
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS


def _schedule(paper_example):
    topo, s1, s2 = paper_example
    return schedule_heuristic(topo, [s1], [s2])


def _shift_slot(schedule, stream_name, link_key, index, new_offset):
    slots = schedule.slots[(stream_name, link_key)]
    slots[index] = dataclasses.replace(slots[index], offset_ns=new_offset)


class TestTamperDetection:
    def test_clean_schedule_validates(self, paper_example):
        validate(_schedule(paper_example))

    def test_window_violation(self, paper_example):
        schedule = _schedule(paper_example)
        # push a TCT frame past its period
        _shift_slot(schedule, "s1", ("D1", "SW1"), 2,
                    schedule.stream("s1").period_ns - 10)
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_sequencing_violation(self, paper_example):
        schedule = _schedule(paper_example)
        slots = schedule.slots[("s1", ("D1", "SW1"))]
        # swap frames 0 and 1 in time
        a, b = slots[0], slots[1]
        slots[0] = dataclasses.replace(a, offset_ns=b.offset_ns)
        slots[1] = dataclasses.replace(b, offset_ns=a.offset_ns)
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_occurrence_violation(self, paper_example):
        schedule = _schedule(paper_example)
        late = [s for s in schedule.probabilistic_streams()
                if s.occurrence_ns > 0][0]
        _shift_slot(schedule, late.name, late.path[0].key, 0, 0)
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_overlap_violation(self, paper_example):
        schedule = _schedule(paper_example)
        # force a possibility onto the same instant as another parent's
        # stream: fabricate by overlapping prob slot with ... the TCT is
        # shared, so overlap it with itself shifted: move prob slot of
        # ps1 onto ps-of-other-parent is impossible here; instead remove
        # the share flag from s1 and keep its overlapping slots.
        streams = [
            s.with_share(False) if s.name == "s1" else s
            for s in schedule.streams
        ]
        streams = [
            dataclasses.replace(s, priority=Priorities.NSH_PL)
            if s.name == "s1" else s
            for s in streams
        ]
        tampered = dataclasses.replace  # silence lint; direct mutation below
        schedule.streams = streams
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_missing_slots(self, paper_example):
        schedule = _schedule(paper_example)
        del schedule.slots[("s1", ("SW1", "D3"))]
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_adjacency_violation(self, paper_example):
        schedule = _schedule(paper_example)
        # make a downstream frame start before its upstream copy finished
        first_up = schedule.slots[("s1", ("D1", "SW1"))][0]
        _shift_slot(schedule, "s1", ("SW1", "D3"), 0, first_up.offset_ns)
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_e2e_violation(self, two_switch_topology):
        s = Stream(
            name="t", path=tuple(two_switch_topology.shortest_path("D1", "D4")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(4),
        )
        schedule = schedule_heuristic(two_switch_topology, [s])
        # tighten the stream's budget below the achieved latency
        achieved = schedule.scheduled_latency_ns("t")
        schedule.streams = [
            dataclasses.replace(s, e2e_ns=achieved - 1)
        ]
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_alignment_violation(self):
        from repro.model.topology import Topology

        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        topo.add_device("D3")
        topo.add_link("D1", "SW1", time_unit_ns=1000)
        topo.add_link("SW1", "D3", time_unit_ns=1000)
        s = Stream(
            name="t", path=tuple(topo.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(4),
        )
        schedule = schedule_heuristic(topo, [s])
        _shift_slot(schedule, "t", ("D1", "SW1"), 0, 500)  # not a tu multiple
        with pytest.raises(ScheduleError):
            validate(schedule)


class TestGapShift:
    def test_zero_when_disjoint(self):
        assert earliest_gap_shift(0, 5, 100, 50, 5, 100) == 0

    def test_shift_clears_overlap(self):
        shift = earliest_gap_shift(48, 5, 100, 50, 5, 100)
        assert shift > 0
        assert not periodic_overlap(48 + shift, 5, 100, 50, 5, 100)

    def test_shift_is_minimal(self):
        shift = earliest_gap_shift(48, 5, 100, 50, 5, 100)
        for smaller in range(shift):
            assert periodic_overlap(48 + smaller, 5, 100, 50, 5, 100) or smaller == 0

    def test_impossible_separation_raises(self):
        # two 60-long patterns under gcd 100 can never be disjoint
        with pytest.raises(ScheduleError):
            earliest_gap_shift(0, 60, 100, 10, 60, 100)

    def test_cross_period_patterns(self):
        shift = earliest_gap_shift(10, 20, 100, 15, 20, 300)
        assert shift >= 0
        assert not periodic_overlap(10 + shift, 20, 100, 15, 20, 300)
