"""GCL-audit tests, including a property sweep across modes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines import schedule_avb, schedule_etsn, schedule_period
from repro.core.gcl import GateWindow, build_gcl
from repro.core.gcl_audit import GclAuditError, audit_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import milliseconds


def _setup(topo):
    tct = [
        Stream(name="sh", path=tuple(topo.shortest_path("D1", "D3")),
               e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
               length_bytes=1500, period_ns=milliseconds(4), share=True),
        Stream(name="ns", path=tuple(topo.shortest_path("D1", "D2")),
               e2e_ns=milliseconds(8), priority=Priorities.NSH_PL,
               length_bytes=800, period_ns=milliseconds(8), share=False),
    ]
    ects = [EctStream("alarm", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4)]
    return tct, ects


class TestCleanAudits:
    @pytest.mark.parametrize("mode", ["etsn", "etsn-strict"])
    def test_etsn_modes_audit_clean(self, star_topology, mode):
        tct, ects = _setup(star_topology)
        schedule = schedule_etsn(star_topology, tct, ects)
        audit_gcl(schedule, build_gcl(schedule, mode=mode))

    def test_period_audits_clean(self, star_topology):
        tct, ects = _setup(star_topology)
        schedule = schedule_period(star_topology, tct, ects)
        gcl = build_gcl(schedule, mode="period",
                        ect_proxies=schedule.meta["ect_proxies"])
        audit_gcl(schedule, gcl)

    def test_avb_audits_clean(self, star_topology):
        tct, ects = _setup(star_topology)
        schedule = schedule_avb(star_topology, tct, ects)
        audit_gcl(schedule, build_gcl(schedule, mode="avb"))


class TestTamperedGcl:
    def _clean(self, star_topology):
        tct, ects = _setup(star_topology)
        schedule = schedule_etsn(star_topology, tct, ects)
        return schedule, build_gcl(schedule, mode="etsn")

    def test_missing_window_detected(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        # drop the shared stream's windows on its last link
        port.windows[Priorities.SH_PL] = []
        port.finalize()
        with pytest.raises(GclAuditError):
            audit_gcl(schedule, gcl)

    def test_wrong_owner_detected(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        port.windows[Priorities.SH_PL] = [
            GateWindow(w.start_ns, w.end_ns, owner="intruder")
            for w in port.windows[Priorities.SH_PL]
        ]
        port.finalize()
        with pytest.raises(GclAuditError):
            audit_gcl(schedule, gcl)

    def test_ep_leak_into_nonshared_detected(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D2"))  # the non-shared stream's last link
        port.windows[Priorities.EP] = [GateWindow(0, gcl.cycle_ns, owner=None)]
        port.finalize()
        with pytest.raises(GclAuditError):
            audit_gcl(schedule, gcl)

    def test_be_leak_into_tct_detected(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        port.windows[Priorities.BE] = [GateWindow(0, gcl.cycle_ns, owner=None)]
        port.finalize()
        with pytest.raises(GclAuditError):
            audit_gcl(schedule, gcl)

    def test_overlapping_windows_detected(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        first = port.windows[Priorities.SH_PL][0]
        port.windows[Priorities.SH_PL].append(
            GateWindow(first.start_ns, first.end_ns + 1, owner=first.owner)
        )
        # bypass finalize's own check by not re-finalizing; audit catches it
        with pytest.raises(GclAuditError):
            audit_gcl(schedule, gcl)


class TestInvariantMessages:
    """One test per numbered invariant in the module docstring; each
    failure must name the offending stream, queue, or window."""

    def _clean(self, star_topology, mode="etsn"):
        tct, ects = _setup(star_topology)
        schedule = schedule_etsn(star_topology, tct, ects)
        return schedule, build_gcl(schedule, mode=mode)

    def test_invariant_1_coverage_names_stream_and_queue(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        port.windows[Priorities.SH_PL] = []
        port.finalize()
        with pytest.raises(
            GclAuditError,
            match=r"sh\[0\] on \('SW1', 'D3'\): queue "
                  rf"{Priorities.SH_PL} gate closed",
        ):
            audit_gcl(schedule, gcl)

    def test_invariant_1_ownership_names_both_owners(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        port.windows[Priorities.SH_PL] = [
            GateWindow(w.start_ns, w.end_ns, owner="intruder")
            for w in port.windows[Priorities.SH_PL]
        ]
        port.finalize()
        with pytest.raises(
            GclAuditError,
            match=r"owned by 'intruder', expected 'sh'",
        ):
            audit_gcl(schedule, gcl)

    def test_invariant_2_ep_policy_names_nonshared_stream(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D2"))  # the non-shared stream's last link
        port.windows[Priorities.EP] = [GateWindow(0, gcl.cycle_ns, owner=None)]
        port.finalize()
        with pytest.raises(
            GclAuditError,
            match=r"EP gate open at \d+ inside non-shared slot of ns",
        ):
            audit_gcl(schedule, gcl)

    def test_invariant_2_strict_mode_names_probabilistic_slot(
        self, star_topology
    ):
        schedule, gcl = self._clean(star_topology, mode="etsn-strict")
        stripped = False
        for port in gcl.ports.values():
            if port.windows.get(Priorities.EP):
                port.windows[Priorities.EP] = []
                port.finalize()
                stripped = True
        assert stripped
        with pytest.raises(
            GclAuditError,
            match=rf"alarm#ps\d+\[\d+\] on .*: queue {Priorities.EP} "
                  r"gate closed",
        ):
            audit_gcl(schedule, gcl)

    def test_invariant_3_be_leak_names_tct_stream(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        port.windows[Priorities.BE] = [GateWindow(0, gcl.cycle_ns, owner=None)]
        port.finalize()
        with pytest.raises(
            GclAuditError,
            match=r"BE gate open at \d+ inside TCT slot of sh",
        ):
            audit_gcl(schedule, gcl)

    def test_invariant_4_cycle_overrun_names_link_and_queue(
        self, star_topology
    ):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        port.windows[Priorities.SH_PL].append(
            GateWindow(port.cycle_ns + 1, port.cycle_ns + 2, owner="sh")
        )
        with pytest.raises(
            GclAuditError,
            match=rf"\('SW1', 'D3'\) q{Priorities.SH_PL}: "
                  r"window past the cycle end",
        ):
            audit_gcl(schedule, gcl)

    def test_invariant_4_overlap_names_both_windows(self, star_topology):
        schedule, gcl = self._clean(star_topology)
        port = gcl.port(("SW1", "D3"))
        first = port.windows[Priorities.SH_PL][0]
        port.windows[Priorities.SH_PL].append(
            GateWindow(first.start_ns, first.end_ns + 1, owner=first.owner)
        )
        with pytest.raises(
            GclAuditError,
            match=rf"q{Priorities.SH_PL}: overlapping windows "
                  rf"\[{first.start_ns},{first.end_ns}",
        ):
            audit_gcl(schedule, gcl)


DEVICES = ["D1", "D2", "D3", "D4"]


@st.composite
def audit_scenario(draw):
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("D1", "SW1"), ("D2", "SW1"),
                           ("D3", "SW2"), ("D4", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch)
    topo.add_link("SW1", "SW2")
    streams = []
    for i in range(draw(st.integers(0, 4))):
        src = draw(st.sampled_from(DEVICES))
        dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
        period = draw(st.sampled_from([milliseconds(4), milliseconds(8)]))
        share = draw(st.booleans())
        streams.append(Stream(
            name=f"t{i}", path=tuple(topo.shortest_path(src, dst)),
            e2e_ns=period,
            priority=Priorities.SH_PL if share else Priorities.NSH_PL,
            length_bytes=draw(st.sampled_from([200, 1500, 3000])),
            period_ns=period, share=share,
        ))
    ects = []
    if draw(st.booleans()):
        src = draw(st.sampled_from(DEVICES))
        dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
        ects.append(EctStream("e", src, dst,
                              min_interevent_ns=milliseconds(16),
                              length_bytes=1500, possibilities=4))
    mode = draw(st.sampled_from(["etsn", "etsn-strict", "avb"]))
    return topo, streams, ects, mode


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(audit_scenario())
def test_every_synthesized_gcl_audits_clean(case):
    from repro.core.schedule import InfeasibleError

    topo, streams, ects, mode = case
    if not streams and not ects:
        return  # nothing scheduled; no GCL to audit
    try:
        if mode == "avb":
            schedule = schedule_avb(topo, streams, ects)
        else:
            schedule = schedule_etsn(topo, streams, ects)
    except InfeasibleError:
        return
    gcl = build_gcl(schedule, mode=mode)
    audit_gcl(schedule, gcl)
