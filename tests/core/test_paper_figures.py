"""Literal reconstructions of the paper's worked examples.

These tests hand-build the slot tables the paper draws (Figs. 4 and 6)
and pass them through the independent Eq. 1-7 validator — the strongest
fidelity check available: our constraint semantics accept exactly the
schedules the paper presents as valid.
"""

import pytest

from repro.core.schedule import NetworkSchedule, ScheduleError, validate
from repro.model.frame import FrameSlot
from repro.model.stream import EctStream, Priorities, Stream, StreamType
from repro.model.topology import Topology
from repro.model.units import MBPS_100, transmission_time_ns, wire_bytes

T = transmission_time_ns(wire_bytes(1500), MBPS_100)  # 'T' of the figures


@pytest.fixture
def fig2_network():
    """Fig. 2's right side: D1, D2, D3 around SW1."""
    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    return topo


def _slot(stream, link, index, offset, period, extra=False):
    return FrameSlot(stream=stream, link=link, index=index,
                     offset_ns=offset, period_ns=period,
                     duration_ns=T, extra=extra)


class TestFig4:
    """Sec. II: two TCT streams; the drawn schedule gives s2 latency 2T."""

    def _streams(self, topo):
        period = 5 * T
        s1 = Stream(name="s1", path=tuple(topo.shortest_path("D1", "D3")),
                    e2e_ns=period, priority=Priorities.NSH_PL,
                    length_bytes=3 * 1500, period_ns=period)
        s2 = Stream(name="s2", path=tuple(topo.shortest_path("D2", "D3")),
                    e2e_ns=period, priority=Priorities.NSH_PH,
                    length_bytes=1500, period_ns=period)
        return s1, s2

    def _figure_slots(self, period):
        """Exactly the slots drawn in Fig. 4."""
        return {
            # s1: three frames back-to-back from t=0 on D1->SW1
            ("s1", ("D1", "SW1")): [
                _slot("s1", ("D1", "SW1"), j, j * T, period) for j in range(3)
            ],
            # forwarded one slot later on SW1->D3
            ("s1", ("SW1", "D3")): [
                _slot("s1", ("SW1", "D3"), j, (j + 1) * T, period) for j in range(3)
            ],
            # s2: sent at t=3T, forwarded at t=4T  ->  latency 2T
            ("s2", ("D2", "SW1")): [_slot("s2", ("D2", "SW1"), 0, 3 * T, period)],
            ("s2", ("SW1", "D3")): [_slot("s2", ("SW1", "D3"), 0, 4 * T, period)],
        }

    def test_figure_schedule_is_valid(self, fig2_network):
        s1, s2 = self._streams(fig2_network)
        schedule = NetworkSchedule(
            topology=fig2_network, streams=[s1, s2],
            slots=self._figure_slots(5 * T),
        )
        validate(schedule)
        # "the latency of s2 is 2T" (Sec. II)
        assert schedule.scheduled_latency_ns("s2") == 2 * T

    def test_overlapping_variant_is_rejected(self, fig2_network):
        """Sec. III-B: scheduling f1_s1 and f3_s1 at the same time on
        SW1-D3 'is invalid' for plain TCT."""
        s1, s2 = self._streams(fig2_network)
        slots = self._figure_slots(5 * T)
        # collide s2's forwarding slot with s1's on the shared link
        slots[("s2", ("SW1", "D3"))] = [
            _slot("s2", ("SW1", "D3"), 0, 2 * T, 5 * T)
        ]
        schedule = NetworkSchedule(
            topology=fig2_network, streams=[s1, s2], slots=slots,
        )
        with pytest.raises(ScheduleError):
            validate(schedule)


class TestFig6:
    """Sec. III-B: s2 becomes ECT, modeled by five possibilities; slots
    may superpose and the last possibility wraps into the next cycle."""

    def _streams(self, topo):
        period = 5 * T
        s1 = Stream(name="s1", path=tuple(topo.shortest_path("D1", "D3")),
                    e2e_ns=period, priority=Priorities.SH_PL,
                    length_bytes=3 * 1500, period_ns=period, share=True)
        possibilities = [
            Stream(name=f"ps2{i + 1}",
                   path=tuple(topo.shortest_path("D2", "D3")),
                   e2e_ns=4 * T,  # 5T - 5T/N with N=5
                   priority=Priorities.EP, length_bytes=1500,
                   period_ns=period, type=StreamType.PROB,
                   occurrence_ns=i * T, parent="s2")
            for i in range(5)
        ]
        return s1, possibilities

    def _figure_slots(self, period):
        slots = {
            ("s1", ("D1", "SW1")): [
                _slot("s1", ("D1", "SW1"), j, j * T, period) for j in range(3)
            ],
            # three message slots plus the '+1' prudent-reservation extra
            ("s1", ("SW1", "D3")): [
                _slot("s1", ("SW1", "D3"), 0, 1 * T, period),
                _slot("s1", ("SW1", "D3"), 1, 2 * T, period),
                _slot("s1", ("SW1", "D3"), 2, 3 * T, period),
                _slot("s1", ("SW1", "D3"), 3, 4 * T, period, extra=True),
            ],
        }
        # each possibility starts at its occurrence time on D2->SW1 and
        # forwards in the next slot; ps24/ps25 superpose with s1's slots
        # and ps25's forwarding wraps past the period end
        for i in range(5):
            name = f"ps2{i + 1}"
            slots[(name, ("D2", "SW1"))] = [
                _slot(name, ("D2", "SW1"), 0, i * T, period)
            ]
            slots[(name, ("SW1", "D3"))] = [
                _slot(name, ("SW1", "D3"), 0, (i + 1) * T, period)
            ]
        return slots

    def test_figure_schedule_is_valid(self, fig2_network):
        s1, possibilities = self._streams(fig2_network)
        schedule = NetworkSchedule(
            topology=fig2_network, streams=[s1] + possibilities,
            slots=self._figure_slots(5 * T),
        )
        validate(schedule)

    def test_superposition_present(self, fig2_network):
        """Possibility slots overlap s1's shared slots on SW1->D3 — the
        'superposition state' the figure highlights."""
        from repro.core.schedule import periodic_overlap

        s1, possibilities = self._streams(fig2_network)
        slots = self._figure_slots(5 * T)
        s1_slots = slots[("s1", ("SW1", "D3"))]
        overlapping = 0
        for i in range(5):
            ps_slot = slots[(f"ps2{i + 1}", ("SW1", "D3"))][0]
            for tct_slot in s1_slots:
                if periodic_overlap(
                    ps_slot.offset_ns, ps_slot.duration_ns, ps_slot.period_ns,
                    tct_slot.offset_ns, tct_slot.duration_ns, tct_slot.period_ns,
                ):
                    overlapping += 1
        assert overlapping >= 3

    def test_wrap_around_slot_required(self, fig2_network):
        """ps25 cannot fit without wrapping: pinning its forwarding slot
        inside the period violates adjacency or the occurrence time."""
        s1, possibilities = self._streams(fig2_network)
        slots = self._figure_slots(5 * T)
        # the figure's ps25 forwarding slot starts at 5T (== period)
        assert slots[("ps25", ("SW1", "D3"))][0].offset_ns == 5 * T
        # moving it inside the period breaks Eq. 7
        slots[("ps25", ("SW1", "D3"))] = [
            _slot("ps25", ("SW1", "D3"), 0, 4 * T, 5 * T)
        ]
        schedule = NetworkSchedule(
            topology=fig2_network, streams=[s1] + possibilities, slots=slots,
        )
        with pytest.raises(ScheduleError):
            validate(schedule)

    def test_each_possibility_within_budget(self, fig2_network):
        s1, possibilities = self._streams(fig2_network)
        schedule = NetworkSchedule(
            topology=fig2_network, streams=[s1] + possibilities,
            slots=self._figure_slots(5 * T),
        )
        for ps in possibilities:
            assert schedule.scheduled_latency_ns(ps.name) <= ps.e2e_ns
