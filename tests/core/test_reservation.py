"""Prudent reservation tests (paper Alg. 1)."""

import pytest

from repro.core.probabilistic import expand_ect
from repro.core.reservation import prudent_reservation, total_extra_slots
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS


def _tct(topo, name, src, dst, share, length=1500, period=None):
    period = period or milliseconds(16)
    priority = Priorities.SH_PL if share else Priorities.NSH_PL
    return Stream(
        name=name, path=tuple(topo.shortest_path(src, dst)),
        e2e_ns=period, priority=priority, length_bytes=length,
        period_ns=period, share=share,
    )


def _ect(src="D2", dst="D3", length=1500, possibilities=4):
    return EctStream(
        name="e1", source=src, destination=dst,
        min_interevent_ns=milliseconds(16), length_bytes=length,
        possibilities=possibilities,
    )


class TestAlgorithmOne:
    def test_no_ect_no_extras(self, star_topology):
        s = _tct(star_topology, "t1", "D1", "D3", share=True)
        plan = prudent_reservation([s])
        assert total_extra_slots(plan) == 0
        for link in s.path:
            assert plan.frames_on(s, link.key) == 1

    def test_nonshared_gets_no_extras(self, star_topology):
        s = _tct(star_topology, "t1", "D1", "D3", share=False)
        probs = expand_ect(_ect(), star_topology)
        plan = prudent_reservation([s] + probs)
        assert total_extra_slots(plan) == 0

    def test_extras_only_on_overlapping_links(self, star_topology):
        """Paper Sec. III-D: s1 (D1->D3) and ECT (D2->D3) only overlap on
        SW1->D3; the D1->SW1 link must not get extras."""
        s = _tct(star_topology, "t1", "D1", "D3", share=True)
        probs = expand_ect(_ect(), star_topology)
        plan = prudent_reservation([s] + probs)
        assert plan.extra_on(s, ("D1", "SW1")) == 0
        assert plan.extra_on(s, ("SW1", "D3")) >= 1

    def test_extra_count_formula(self, star_topology):
        """Paper mode: n = ect_frames * ceil(tct_wire_time / min_interevent)."""
        s = _tct(star_topology, "t1", "D1", "D3", share=True, length=3 * 1500)
        probs = expand_ect(_ect(length=1500), star_topology)
        plan = prudent_reservation([s] + probs, mode="paper")
        tct_wire = 3 * MTU_WIRE_NS
        expected = 1 * -(-tct_wire // milliseconds(16))  # = 1
        assert plan.extra_on(s, ("SW1", "D3")) == expected

    def test_multi_frame_ect_multiplies_extras(self, star_topology):
        s = _tct(star_topology, "t1", "D1", "D3", share=True)
        probs = expand_ect(_ect(length=3 * 1500), star_topology)
        plan = prudent_reservation([s] + probs, mode="paper")
        assert plan.extra_on(s, ("SW1", "D3")) == 3

    def test_extras_counted_once_per_parent_not_per_possibility(self, star_topology):
        s = _tct(star_topology, "t1", "D1", "D3", share=True)
        few = prudent_reservation([s] + expand_ect(_ect(possibilities=2), star_topology))
        many = prudent_reservation([s] + expand_ect(_ect(possibilities=8), star_topology))
        assert (few.extra_on(s, ("SW1", "D3"))
                == many.extra_on(s, ("SW1", "D3")))

    def test_two_ect_streams_sum(self, two_switch_topology):
        s = _tct(two_switch_topology, "t1", "D1", "D4", share=True)
        e1 = EctStream("e1", "D2", "D4", min_interevent_ns=milliseconds(16),
                       length_bytes=1500, possibilities=4)
        e2 = EctStream("e2", "D2", "D3", min_interevent_ns=milliseconds(16),
                       length_bytes=1500, possibilities=4)
        probs = (expand_ect(e1, two_switch_topology)
                 + expand_ect(e2, two_switch_topology))
        plan = prudent_reservation([s] + probs, mode="paper")
        # both ECT streams cross SW1->SW2; only e1 reaches SW2->D4
        assert plan.extra_on(s, ("SW1", "SW2")) == 2
        assert plan.extra_on(s, ("SW2", "D4")) == 1
        assert plan.extra_on(s, ("D1", "SW1")) == 0

    def test_probabilistic_streams_get_base_counts(self, star_topology):
        probs = expand_ect(_ect(), star_topology)
        plan = prudent_reservation(probs)
        for p in probs:
            for link in p.path:
                assert plan.frames_on(p, link.key) == 1
                assert plan.extra_on(p, link.key) == 0

    def test_slow_ect_can_displace_more(self, star_topology):
        """A long TCT message spanning several minimum inter-event times
        must reserve one displacement slot per possible event."""
        s = _tct(star_topology, "t1", "D1", "D3", share=True,
                 length=10 * 1500, period=milliseconds(16))
        fast_ect = EctStream("e1", "D2", "D3",
                             min_interevent_ns=milliseconds(1),
                             length_bytes=1500, possibilities=4)
        probs = expand_ect(fast_ect, star_topology)
        plan = prudent_reservation([s] + probs, mode="paper")
        tct_wire = 10 * MTU_WIRE_NS  # ~1.23 ms > 1 ms min inter-event
        assert plan.extra_on(s, ("SW1", "D3")) == -(-tct_wire // milliseconds(1))


class TestAdjacentOffset:
    def test_offset_matches_count_difference(self, two_switch_topology):
        s = _tct(two_switch_topology, "t1", "D1", "D4", share=True)
        probs = expand_ect(
            EctStream("e1", "D2", "D4", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
            two_switch_topology,
        )
        plan = prudent_reservation([s] + probs)
        # D1->SW1 has no extras; SW1->SW2 has one -> downstream has MORE
        assert plan.adjacent_offset(s, ("D1", "SW1"), ("SW1", "SW2")) == 0
        # SW1->SW2 (2 frames) feeds SW2->D4 (2 frames): offset 0
        assert plan.adjacent_offset(s, ("SW1", "SW2"), ("SW2", "D4")) == 0

    def test_offset_positive_when_upstream_longer(self, star_topology):
        s = _tct(star_topology, "t1", "D2", "D3", share=True)
        probs = expand_ect(_ect(src="D2", dst="D3"), star_topology)
        plan = prudent_reservation([s] + probs)
        # both links shared: equal counts, offset 0 both ways
        assert plan.adjacent_offset(s, ("D2", "SW1"), ("SW1", "D3")) == 0


class TestRobustMode:
    """The sound generalization: event-sized extra windows."""

    def test_event_count(self, star_topology):
        # period 16 ms, min inter-event 16 ms: floor(16/16) + 1 = 2 events
        s = _tct(star_topology, "t1", "D1", "D3", share=True)
        probs = expand_ect(_ect(), star_topology)
        plan = prudent_reservation([s] + probs, mode="robust")
        assert plan.extra_on(s, ("SW1", "D3")) == 2

    def test_extra_window_sized_for_event_block(self, star_topology):
        """Each extra window covers the whole event transmission plus two
        TCT-frame pads — sound even when TCT frames are much shorter than
        the ECT message."""
        s = _tct(star_topology, "t1", "D1", "D3", share=True, length=400)
        probs = expand_ect(_ect(length=1500), star_topology)
        plan = prudent_reservation([s] + probs, mode="robust")
        link = next(l for l in s.path if l.key == ("SW1", "D3"))
        sizes = plan.extra_durations_on(s, ("SW1", "D3"))
        assert sizes
        ect_block = probs[0].transmission_ns(link)
        tct_frame = s.transmission_ns(link)
        assert all(size == ect_block + 2 * tct_frame for size in sizes)

    def test_robust_reserves_more_time_than_paper_for_short_frames(self, star_topology):
        from repro.core.reservation import total_extra_time_ns

        s = _tct(star_topology, "t1", "D1", "D3", share=True, length=400)
        probs = expand_ect(_ect(length=1500), star_topology)
        streams = [s] + probs
        paper = prudent_reservation(streams, mode="paper")
        robust = prudent_reservation(streams, mode="robust")
        assert (total_extra_time_ns(robust, streams)
                > total_extra_time_ns(paper, streams))

    def test_unknown_mode_rejected(self, star_topology):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            prudent_reservation([], mode="magic")
