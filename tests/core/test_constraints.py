"""Constraint-generation unit tests (Eqs. 1-7 at the formula level)."""

import pytest

from repro.core.constraints import build_constraints, build_frames, window_max_ns
from repro.core.probabilistic import expand_ect
from repro.core.reservation import prudent_reservation
from repro.model.frame import FrameVar
from repro.model.stream import EctStream, Priorities, Stream, StreamError, StreamType
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS


def _tct(topo, name="t1", share=False, length=1500, period=None):
    period = period or milliseconds(4)
    return Stream(
        name=name, path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.SH_PL if share else Priorities.NSH_PL,
        length_bytes=length, period_ns=period, share=share,
    )


class TestWindowMax:
    def test_det_window(self, star_topology):
        s = _tct(star_topology)
        frame = FrameVar(s.name, s.path[0].key, 0, s.period_ns, 1000)
        assert window_max_ns(s, frame) == s.period_ns - 1000

    def test_prob_window_widens_by_occurrence(self, star_topology):
        probs = expand_ect(
            EctStream("e", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
            star_topology,
        )
        late = probs[-1]
        frame = FrameVar(late.name, late.path[0].key, 0, late.period_ns, 1000)
        assert window_max_ns(late, frame) == (
            late.period_ns - 1000 + late.occurrence_ns
        )


class TestBuildFrames:
    def test_counts_match_plan(self, star_topology):
        s = _tct(star_topology, share=True)
        probs = expand_ect(
            EctStream("e", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
            star_topology,
        )
        streams = [s] + probs
        plan = prudent_reservation(streams)
        frames = build_frames(streams, plan)
        for stream in streams:
            for link in stream.path:
                assert len(frames[(stream.name, link.key)]) == \
                    plan.frames_on(stream, link.key)

    def test_guard_margin_inflates_durations(self, star_topology):
        s = _tct(star_topology)
        plan = prudent_reservation([s])
        plain = build_frames([s], plan)
        padded = build_frames([s], plan, guard_margin_ns=5_000)
        key = (s.name, s.path[0].key)
        assert padded[key][0].duration_ns == plain[key][0].duration_ns + 5_000

    def test_robust_extra_durations_applied(self, star_topology):
        s = _tct(star_topology, share=True, length=400)
        probs = expand_ect(
            EctStream("e", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
            star_topology,
        )
        streams = [s] + probs
        plan = prudent_reservation(streams, mode="robust")
        frames = build_frames(streams, plan)
        extras = [f for f in frames[(s.name, ("SW1", "D3"))] if f.extra]
        assert extras
        # event-sized windows: much larger than the 400 B message frame
        message = [f for f in frames[(s.name, ("SW1", "D3"))] if not f.extra]
        assert all(e.duration_ns > 3 * message[0].duration_ns for e in extras)


class TestSystemShape:
    def test_unit_constraints_and_clauses_counted(self, star_topology):
        a = _tct(star_topology, "a")
        b = Stream(
            name="b", path=tuple(star_topology.shortest_path("D2", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(4),
        )
        system = build_constraints(
            star_topology, [a, b], prudent_reservation([a, b])
        )
        # a and b meet only on SW1->D3: exactly one frame pair there
        assert system.num_overlap_clauses > 0
        # 4 frame variables exist (2 streams x 2 links x 1 frame)
        assert len(system.frames) == 4

    def test_overlap_exemptions_thin_the_formula(self, star_topology):
        shared = _tct(star_topology, "sh", share=True)
        nonshared = _tct(star_topology, "ns", share=False)
        probs = expand_ect(
            EctStream("e", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
            star_topology,
        )
        with_shared = build_constraints(
            star_topology, [shared] + probs,
            prudent_reservation([shared] + probs),
        )
        with_nonshared = build_constraints(
            star_topology, [nonshared] + probs,
            prudent_reservation([nonshared] + probs),
        )
        # prob-vs-shared pairs are exempt; prob-vs-nonshared are not
        assert with_nonshared.num_overlap_clauses > with_shared.num_overlap_clauses

    def test_priority_violation_rejected(self, star_topology):
        bad = Stream(
            name="bad", path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.EP,  # EP is ECT-only
            length_bytes=1500, period_ns=milliseconds(4),
        )
        with pytest.raises(StreamError):
            build_constraints(star_topology, [bad], prudent_reservation([bad]))

    def test_solver_model_respects_every_emitted_constraint(self, paper_example):
        """Solve the paper example and evaluate the raw formula."""
        topo, s1, s2 = paper_example
        streams = [s1] + expand_ect(s2, topo)
        plan = prudent_reservation(streams)
        system = build_constraints(topo, streams, plan)
        result = system.solver.check()
        assert result.sat
        model = result.model
        # every frame within its window
        by_name = {s.name: s for s in streams}
        for (name, _), frame_list in system.frames.items():
            stream = by_name[name]
            for frame in frame_list:
                phi = model[frame.var_name]
                assert 0 <= phi <= window_max_ns(stream, frame)
