"""PERIOD and AVB baseline scheduling tests."""

import pytest

from repro.core.baselines import schedule_avb, schedule_etsn, schedule_period
from repro.core.schedule import validate
from repro.model.stream import EctStream, Priorities, Stream, StreamError, StreamType
from repro.model.units import milliseconds


def _tct(topo, name="t1", share=True, period=None):
    period = period or milliseconds(8)
    return Stream(
        name=name, path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.SH_PL if share else Priorities.NSH_PL,
        length_bytes=800, period_ns=period, share=share,
    )


def _ect(possibilities=4):
    return EctStream(
        name="e1", source="D2", destination="D3",
        min_interevent_ns=milliseconds(16), length_bytes=1500,
        possibilities=possibilities,
    )


class TestEtsnFacade:
    def test_backend_selection(self, star_topology):
        for backend in ("heuristic", "smt"):
            schedule = schedule_etsn(star_topology, [_tct(star_topology)],
                                     [_ect()], backend=backend)
            validate(schedule)

    def test_unknown_backend(self, star_topology):
        with pytest.raises(ValueError):
            schedule_etsn(star_topology, [_tct(star_topology)], backend="magic")


class TestPeriod:
    def test_proxy_period_matches_possibility_count(self, star_topology):
        schedule = schedule_period(star_topology, [_tct(star_topology)], [_ect(4)])
        proxy = schedule.stream("e1#period")
        assert proxy.period_ns == milliseconds(16) // 4
        assert proxy.type == StreamType.DET
        assert not proxy.share

    def test_multiplier_shrinks_period(self, star_topology):
        schedule = schedule_period(star_topology, [_tct(star_topology)], [_ect(4)],
                                   slot_multiplier=2)
        proxy = schedule.stream("e1#period")
        assert proxy.period_ns == milliseconds(16) // 8

    def test_proxies_meta(self, star_topology):
        schedule = schedule_period(star_topology, [_tct(star_topology)], [_ect(4)])
        assert schedule.meta["ect_proxies"] == {"e1#period": "e1"}
        assert schedule.meta["method"] == "period_x1"
        assert [e.name for e in schedule.ect_streams] == ["e1"]

    def test_no_probabilistic_streams(self, star_topology):
        schedule = schedule_period(star_topology, [_tct(star_topology)], [_ect(4)])
        assert not schedule.probabilistic_streams()

    def test_share_flags_stripped(self, star_topology):
        schedule = schedule_period(star_topology, [_tct(star_topology, share=True)],
                                   [_ect(4)])
        tct = schedule.stream("t1")
        assert not tct.share
        assert Priorities.is_nonshared_tct(tct.priority)

    def test_validates(self, star_topology):
        schedule = schedule_period(star_topology, [_tct(star_topology)], [_ect(4)])
        validate(schedule)

    def test_bad_multiplier(self, star_topology):
        with pytest.raises(ValueError):
            schedule_period(star_topology, [], [_ect(4)], slot_multiplier=0)

    def test_non_dividing_slots_rejected(self, star_topology):
        ect = EctStream(name="e1", source="D2", destination="D3",
                        min_interevent_ns=milliseconds(16) + 1,
                        length_bytes=1500, possibilities=4)
        with pytest.raises(StreamError):
            schedule_period(star_topology, [], [ect])


class TestAvb:
    def test_only_tct_scheduled(self, star_topology):
        schedule = schedule_avb(star_topology, [_tct(star_topology)], [_ect()])
        assert [s.name for s in schedule.streams] == ["t1"]
        assert [e.name for e in schedule.ect_streams] == ["e1"]
        assert schedule.meta["method"] == "avb"

    def test_share_flags_stripped(self, star_topology):
        schedule = schedule_avb(star_topology, [_tct(star_topology, share=True)],
                                [_ect()])
        tct = schedule.stream("t1")
        assert not tct.share
        assert Priorities.is_nonshared_tct(tct.priority)

    def test_validates(self, star_topology):
        validate(schedule_avb(star_topology, [_tct(star_topology)], [_ect()]))

    def test_no_extra_slots(self, star_topology):
        schedule = schedule_avb(star_topology, [_tct(star_topology)], [_ect()])
        assert schedule.meta["extra_slots"] == 0
