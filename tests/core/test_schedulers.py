"""Scheduler backend tests: SMT and heuristic must both produce valid
schedules, agree on feasibility, and realize the paper's Fig. 6 features."""

import pytest

from repro.core.heuristic import schedule_heuristic
from repro.core.schedule import InfeasibleError, validate
from repro.core.smt_scheduler import schedule_smt
from repro.model.stream import EctStream, Priorities, Stream, StreamType
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS

BACKENDS = [schedule_smt, schedule_heuristic]


def _tct(topo, name, src, dst, share=False, length=1500, period=None, e2e=None):
    period = period or milliseconds(4)
    priority = Priorities.SH_PL if share else Priorities.NSH_PL
    return Stream(
        name=name, path=tuple(topo.shortest_path(src, dst)),
        e2e_ns=e2e or period, priority=priority, length_bytes=length,
        period_ns=period, share=share,
    )


@pytest.mark.parametrize("backend", BACKENDS, ids=["smt", "heuristic"])
class TestBothBackends:
    def test_single_stream(self, star_topology, backend):
        s = _tct(star_topology, "t1", "D1", "D3")
        schedule = backend(star_topology, [s])
        validate(schedule)
        assert schedule.scheduled_latency_ns("t1") <= s.e2e_ns

    def test_two_streams_share_a_link(self, star_topology, backend):
        a = _tct(star_topology, "a", "D1", "D3")
        b = _tct(star_topology, "b", "D2", "D3")
        schedule = backend(star_topology, [a, b])
        validate(schedule)

    def test_paper_example_schedules(self, paper_example, backend):
        topo, s1, s2 = paper_example
        schedule = backend(topo, [s1], [s2])
        validate(schedule)
        # 5 possibilities + the TCT stream
        assert len(schedule.streams) == 6
        # prudent reservation added at least one extra on the shared link
        extras = [s for s in schedule.link_slots(("SW1", "D3")) if s.extra]
        assert extras

    def test_possibilities_meet_their_budgets(self, paper_example, backend):
        topo, s1, s2 = paper_example
        schedule = backend(topo, [s1], [s2])
        for ps in schedule.probabilistic_streams():
            assert schedule.scheduled_latency_ns(ps.name) <= ps.e2e_ns

    def test_superposition_slots_exist(self, paper_example, backend):
        """E-TSN's defining relaxation: some probabilistic slot shares its
        time with another slot on the link (a sibling possibility or a
        shared TCT slot) — which classical Qbv scheduling would forbid."""
        from repro.core.schedule import periodic_overlap

        topo, s1, s2 = paper_example
        schedule = backend(topo, [s1], [s2])
        slots = schedule.link_slots(("SW1", "D3"))
        prob_slots = [s for s in slots if s.stream.startswith("s2#")]
        assert prob_slots
        overlapping = 0
        for p in prob_slots:
            for other in slots:
                if other is p:
                    continue
                if periodic_overlap(
                    p.offset_ns, p.duration_ns, p.period_ns,
                    other.offset_ns, other.duration_ns, other.period_ns,
                ):
                    overlapping += 1
                    break
        assert overlapping > 0

    def test_infeasible_when_link_overcommitted(self, star_topology, backend):
        # two streams, each needing >half the period on the same link
        period = 2 * MTU_WIRE_NS + 1000
        a = _tct(star_topology, "a", "D1", "D3", length=2 * 1500, period=period)
        b = _tct(star_topology, "b", "D2", "D3", length=2 * 1500, period=period)
        with pytest.raises(InfeasibleError):
            backend(star_topology, [a, b])

    def test_infeasible_tight_deadline(self, two_switch_topology, backend):
        # e2e below the unavoidable 3-hop store-and-forward time
        s = _tct(two_switch_topology, "t", "D1", "D4",
                 e2e=2 * MTU_WIRE_NS, period=milliseconds(4))
        with pytest.raises(InfeasibleError):
            backend(two_switch_topology, [s])

    def test_multihop_pipeline(self, two_switch_topology, backend):
        s = _tct(two_switch_topology, "t", "D1", "D4", length=2 * 1500)
        schedule = backend(two_switch_topology, [s])
        validate(schedule)
        # store-and-forward: at least 3 hops of full wire time
        assert schedule.scheduled_latency_ns("t") >= 3 * MTU_WIRE_NS

    def test_mixed_periods(self, star_topology, backend):
        a = _tct(star_topology, "a", "D1", "D3", period=milliseconds(4))
        b = _tct(star_topology, "b", "D2", "D3", period=milliseconds(8))
        c = _tct(star_topology, "c", "D1", "D2", period=milliseconds(16))
        schedule = backend(star_topology, [a, b, c])
        validate(schedule)
        assert schedule.hyperperiod_ns == milliseconds(16)

    def test_ect_only_no_tct(self, star_topology, backend):
        ect = EctStream("e", "D2", "D3", min_interevent_ns=milliseconds(16),
                        length_bytes=1500, possibilities=4)
        schedule = backend(star_topology, [], [ect])
        validate(schedule)
        assert len(schedule.probabilistic_streams()) == 4

    def test_meta_backend_tag(self, star_topology, backend):
        s = _tct(star_topology, "t1", "D1", "D3")
        schedule = backend(star_topology, [s])
        assert schedule.meta["backend"] in ("smt", "heuristic")


class TestBackendAgreement:
    """Feasibility verdicts of the two backends must agree."""

    def test_agree_on_feasible_paper_example(self, paper_example):
        topo, s1, s2 = paper_example
        a = schedule_smt(topo, [s1], [s2])
        b = schedule_heuristic(topo, [s1], [s2])
        validate(a)
        validate(b)

    def test_agree_on_borderline_packing(self, star_topology):
        # five MTU streams through SW1->D3, one frame-slot of slack for
        # the store-and-forward pipeline: tight but feasible
        period = 6 * MTU_WIRE_NS
        streams = [
            _tct(star_topology, f"s{i}", "D1" if i % 2 else "D2", "D3",
                 period=period)
            for i in range(5)
        ]
        a = schedule_smt(star_topology, streams)
        b = schedule_heuristic(star_topology, streams)
        validate(a)
        validate(b)

    def test_agree_on_infeasible_packing(self, star_topology):
        # six MTU streams exactly tile the period on SW1->D3, leaving no
        # room for the first hop to precede: infeasible for both
        period = 6 * MTU_WIRE_NS
        streams = [
            _tct(star_topology, f"s{i}", "D1" if i % 2 else "D2", "D3",
                 period=period)
            for i in range(6)
        ]
        with pytest.raises(InfeasibleError):
            schedule_smt(star_topology, streams)
        with pytest.raises(InfeasibleError):
            schedule_heuristic(star_topology, streams)


class TestScheduleModel:
    def test_stream_lookup(self, star_topology):
        s = _tct(star_topology, "t1", "D1", "D3")
        schedule = schedule_heuristic(star_topology, [s])
        assert schedule.stream("t1").name == "t1"
        with pytest.raises(KeyError):
            schedule.stream("nope")

    def test_link_slots_sorted(self, paper_example):
        topo, s1, s2 = paper_example
        schedule = schedule_heuristic(topo, [s1], [s2])
        slots = schedule.link_slots(("SW1", "D3"))
        assert slots == sorted(slots, key=lambda f: (f.offset_ns, f.stream, f.index))

    def test_describe_contains_streams(self, paper_example):
        topo, s1, s2 = paper_example
        schedule = schedule_heuristic(topo, [s1], [s2])
        text = schedule.describe()
        assert "s1" in text and "s2#ps1" in text and "extra" in text
