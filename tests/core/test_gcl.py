"""GCL synthesis tests: windows, complements, modes, runtime queries."""

import pytest

from repro.core.baselines import schedule_avb, schedule_etsn, schedule_period
from repro.core.gcl import (
    GateWindow,
    PortGcl,
    build_gcl,
    complement_intervals,
    merge_intervals,
)
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from tests.conftest import MTU_WIRE_NS


class TestIntervalHelpers:
    def test_merge_disjoint(self):
        assert merge_intervals([(0, 5), (10, 15)]) == [(0, 5), (10, 15)]

    def test_merge_overlapping(self):
        assert merge_intervals([(0, 5), (3, 8), (8, 9)]) == [(0, 9)]

    def test_merge_unsorted(self):
        assert merge_intervals([(10, 12), (0, 5)]) == [(0, 5), (10, 12)]

    def test_complement_full_cycle(self):
        assert complement_intervals([], 100) == [(0, 100)]

    def test_complement_with_busy(self):
        assert complement_intervals([(10, 20), (50, 60)], 100) == [
            (0, 10), (20, 50), (60, 100),
        ]

    def test_complement_busy_at_edges(self):
        assert complement_intervals([(0, 10), (90, 100)], 100) == [(10, 90)]

    def test_complement_fully_busy(self):
        assert complement_intervals([(0, 100)], 100) == []


class TestGateWindow:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            GateWindow(5, 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            GateWindow(-1, 5)

    def test_duration(self):
        assert GateWindow(5, 9).duration_ns == 4


class TestPortGcl:
    def _gcl(self):
        gcl = PortGcl(link=("A", "B"), cycle_ns=1000)
        gcl.add_window(7, GateWindow(100, 200, owner=None))
        gcl.add_window(7, GateWindow(500, 700, owner=None))
        gcl.add_window(3, GateWindow(0, 50, owner="s1"))
        gcl.finalize()
        return gcl

    def test_open_state(self):
        gcl = self._gcl()
        is_open, owner, boundary = gcl.state_at(7, 150)
        assert is_open and owner is None and boundary == 200

    def test_closed_state_reports_next_opening(self):
        gcl = self._gcl()
        is_open, _, boundary = gcl.state_at(7, 250)
        assert not is_open and boundary == 500

    def test_wraps_to_next_cycle(self):
        gcl = self._gcl()
        is_open, _, boundary = gcl.state_at(7, 800)
        assert not is_open and boundary == 1100  # next cycle's 100

    def test_cycle_relative(self):
        gcl = self._gcl()
        is_open, _, boundary = gcl.state_at(7, 3150)  # 3 cycles + 150
        assert is_open and boundary == 3200

    def test_exact_end_is_closed(self):
        gcl = self._gcl()
        is_open, _, _ = gcl.state_at(7, 200)
        assert not is_open

    def test_owner_propagated(self):
        gcl = self._gcl()
        is_open, owner, _ = gcl.state_at(3, 10)
        assert is_open and owner == "s1"

    def test_always_closed_queue(self):
        gcl = self._gcl()
        assert gcl.is_always_closed(5)
        is_open, _, boundary = gcl.state_at(5, 10)
        assert not is_open and boundary == 1010

    def test_overlapping_windows_rejected(self):
        gcl = PortGcl(link=("A", "B"), cycle_ns=1000)
        gcl.add_window(7, GateWindow(100, 200))
        gcl.add_window(7, GateWindow(150, 300))
        with pytest.raises(ValueError):
            gcl.finalize()

    def test_window_beyond_cycle_rejected(self):
        gcl = PortGcl(link=("A", "B"), cycle_ns=1000)
        with pytest.raises(ValueError):
            gcl.add_window(7, GateWindow(900, 1100))

    def test_bad_queue_rejected(self):
        gcl = PortGcl(link=("A", "B"), cycle_ns=1000)
        with pytest.raises(ValueError):
            gcl.add_window(8, GateWindow(0, 10))


def _paper_setup(star_topology):
    period = 5 * MTU_WIRE_NS
    s1 = Stream(
        name="s1", path=tuple(star_topology.shortest_path("D1", "D3")),
        e2e_ns=period, priority=Priorities.SH_PL, length_bytes=3 * 1500,
        period_ns=period, share=True,
    )
    nonshared = Stream(
        name="ns1", path=tuple(star_topology.shortest_path("D1", "D2")),
        e2e_ns=period, priority=Priorities.NSH_PL, length_bytes=1500,
        period_ns=period, share=False,
    )
    ect = EctStream(
        name="e1", source="D2", destination="D3",
        min_interevent_ns=period, length_bytes=1500, possibilities=5,
    )
    return s1, nonshared, ect


class TestBuildModes:
    def test_etsn_ep_complement_of_nonshared(self, star_topology):
        s1, ns1, ect = _paper_setup(star_topology)
        schedule = schedule_etsn(star_topology, [s1, ns1], [ect])
        gcl = build_gcl(schedule, mode="etsn")
        # On SW1->D2 (non-shared stream's link) EP must be closed during
        # ns1's window.
        port = gcl.port(("SW1", "D2"))
        ns_window = port.windows[Priorities.NSH_PL][0]
        mid = (ns_window.start_ns + ns_window.end_ns) // 2
        is_open, _, _ = port.state_at(Priorities.EP, mid)
        assert not is_open
        # ...but open right after it.
        is_open, _, _ = port.state_at(Priorities.EP, ns_window.end_ns)
        assert is_open

    def test_etsn_ep_open_during_shared_windows(self, star_topology):
        s1, ns1, ect = _paper_setup(star_topology)
        schedule = schedule_etsn(star_topology, [s1, ns1], [ect])
        gcl = build_gcl(schedule, mode="etsn")
        port = gcl.port(("SW1", "D3"))
        shared = port.windows[Priorities.SH_PL][0]
        is_open, owner, _ = port.state_at(Priorities.EP, shared.start_ns)
        assert is_open and owner is None

    def test_etsn_strict_ep_only_in_reserved_slots(self, star_topology):
        s1, ns1, ect = _paper_setup(star_topology)
        schedule = schedule_etsn(star_topology, [s1, ns1], [ect])
        strict = build_gcl(schedule, mode="etsn-strict")
        loose = build_gcl(schedule, mode="etsn")
        for key in strict.ports:
            strict_open = sum(
                w.duration_ns for w in strict.ports[key].windows.get(Priorities.EP, [])
            )
            loose_open = sum(
                w.duration_ns for w in loose.ports[key].windows.get(Priorities.EP, [])
            )
            assert strict_open <= loose_open

    def test_period_ep_only_in_proxy_windows(self, star_topology):
        # N=2 so the proxy (period = min_interevent / 2) leaves room for
        # the store-and-forward pipeline.
        ect = EctStream(
            name="e1", source="D2", destination="D3",
            min_interevent_ns=5 * MTU_WIRE_NS, length_bytes=1500,
            possibilities=2,
        )
        schedule = schedule_period(star_topology, [], [ect])
        gcl = build_gcl(schedule, mode="period",
                        ect_proxies=schedule.meta["ect_proxies"])
        port = gcl.port(("SW1", "D3"))
        ep_windows = port.windows[Priorities.EP]
        assert ep_windows
        assert all(w.owner == "e1" for w in ep_windows)
        # one dedicated window per proxy period over the cycle
        cycle = schedule.hyperperiod_ns
        proxy_period = ect.min_interevent_ns // 2
        assert len(ep_windows) == cycle // proxy_period

    def test_avb_ep_is_tct_complement(self, star_topology):
        s1, ns1, ect = _paper_setup(star_topology)
        schedule = schedule_avb(star_topology, [s1, ns1], [ect])
        gcl = build_gcl(schedule, mode="avb")
        port = gcl.port(("SW1", "D3"))
        busy = sorted(
            (w.start_ns, w.end_ns)
            for q, ws in port.windows.items()
            if q not in (Priorities.EP, Priorities.BE)
            for w in ws
        )
        for window in port.windows[Priorities.EP]:
            for start, end in busy:
                assert window.end_ns <= start or window.start_ns >= end

    def test_unknown_mode_rejected(self, star_topology):
        s1, ns1, ect = _paper_setup(star_topology)
        schedule = schedule_etsn(star_topology, [s1, ns1], [ect])
        with pytest.raises(ValueError):
            build_gcl(schedule, mode="wrong")

    def test_be_gate_open_only_when_unallocated(self, star_topology):
        s1, ns1, ect = _paper_setup(star_topology)
        schedule = schedule_etsn(star_topology, [s1, ns1], [ect])
        gcl = build_gcl(schedule, mode="etsn")
        port = gcl.port(("SW1", "D3"))
        tct_windows = [
            w for q, ws in port.windows.items()
            if q not in (Priorities.EP, Priorities.BE)
            for w in ws
        ]
        for be_window in port.windows[Priorities.BE]:
            for tct in tct_windows:
                assert (be_window.end_ns <= tct.start_ns
                        or be_window.start_ns >= tct.end_ns)

    def test_ect_path_ports_exist_even_without_tct(self, star_topology):
        _, _, ect = _paper_setup(star_topology)
        schedule = schedule_etsn(star_topology, [], [ect])
        gcl = build_gcl(schedule, mode="etsn")
        assert ("D2", "SW1") in gcl.ports
        assert ("SW1", "D3") in gcl.ports
