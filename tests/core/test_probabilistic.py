"""Probabilistic stream expansion tests (paper Sec. III-B)."""

import pytest

from repro.core.probabilistic import (
    expand_ect,
    possibility_for_occurrence,
    quantization_delay_ns,
)
from repro.model.stream import EctStream, Priorities, StreamError, StreamType
from repro.model.units import milliseconds


def _ect(possibilities=8, min_interevent=milliseconds(16), e2e=None):
    return EctStream(
        name="e1", source="D2", destination="D3",
        min_interevent_ns=min_interevent, length_bytes=1500,
        possibilities=possibilities, e2e_ns=e2e,
    )


class TestExpansion:
    def test_count_and_naming(self, star_topology):
        streams = expand_ect(_ect(possibilities=5), star_topology)
        assert len(streams) == 5
        assert [s.name for s in streams] == [f"e1#ps{i}" for i in range(1, 6)]

    def test_occurrence_times_evenly_spread(self, star_topology):
        streams = expand_ect(_ect(possibilities=4), star_topology)
        step = milliseconds(16) // 4
        assert [s.occurrence_ns for s in streams] == [0, step, 2 * step, 3 * step]

    def test_all_probabilistic_with_ep_priority(self, star_topology):
        for s in expand_ect(_ect(), star_topology):
            assert s.type == StreamType.PROB
            assert s.priority == Priorities.EP
            assert s.parent == "e1"

    def test_period_is_min_interevent(self, star_topology):
        for s in expand_ect(_ect(), star_topology):
            assert s.period_ns == milliseconds(16)

    def test_budget_shrinks_by_quantization_step(self, star_topology):
        streams = expand_ect(_ect(possibilities=8), star_topology)
        step = milliseconds(16) // 8
        assert all(s.e2e_ns == milliseconds(16) - step for s in streams)

    def test_explicit_deadline_respected(self, star_topology):
        streams = expand_ect(_ect(possibilities=8, e2e=milliseconds(8)), star_topology)
        step = milliseconds(16) // 8
        assert all(s.e2e_ns == milliseconds(8) - step for s in streams)

    def test_same_route_as_parent(self, star_topology):
        ect = _ect()
        expected = ect.route(star_topology)
        for s in expand_ect(ect, star_topology):
            assert s.path == expected

    def test_rejects_non_dividing_n(self, star_topology):
        with pytest.raises(StreamError):
            expand_ect(_ect(possibilities=7), star_topology)

    def test_rejects_budget_exhausted(self, star_topology):
        # deadline equal to the quantization step leaves nothing
        with pytest.raises(StreamError):
            expand_ect(
                _ect(possibilities=2, e2e=milliseconds(8)), star_topology
            )

    def test_rejects_misaligned_macrotick(self):
        from repro.model.topology import Topology

        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D2")
        topo.add_device("D3")
        topo.add_link("D2", "SW1", time_unit_ns=3_000_000)
        topo.add_link("D3", "SW1", time_unit_ns=3_000_000)
        # step = 16 ms / 8 = 2 ms, not a multiple of tu 3 ms
        with pytest.raises(StreamError):
            expand_ect(_ect(possibilities=8), topo)


class TestQuantization:
    def test_delay_bound(self):
        assert quantization_delay_ns(_ect(possibilities=8)) == milliseconds(2)
        assert quantization_delay_ns(_ect(possibilities=4)) == milliseconds(4)

    def test_possibility_for_exact_offsets(self):
        ect = _ect(possibilities=4)
        step = milliseconds(4)
        # event exactly at an offset rides that possibility
        assert possibility_for_occurrence(ect, 0) == 0
        assert possibility_for_occurrence(ect, step) == 1
        assert possibility_for_occurrence(ect, 3 * step) == 3

    def test_possibility_between_offsets_rides_next(self):
        ect = _ect(possibilities=4)
        step = milliseconds(4)
        assert possibility_for_occurrence(ect, 1) == 1
        assert possibility_for_occurrence(ect, step + 1) == 2
        # past the last offset it wraps to the next cycle's first
        assert possibility_for_occurrence(ect, 3 * step + 1) == 0

    def test_wraps_across_periods(self):
        ect = _ect(possibilities=4)
        assert possibility_for_occurrence(ect, milliseconds(16)) == 0
        assert possibility_for_occurrence(ect, milliseconds(16) + 1) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            possibility_for_occurrence(_ect(), -1)

    def test_delay_never_exceeds_step(self):
        ect = _ect(possibilities=8)
        step = quantization_delay_ns(ect)
        for t in range(0, milliseconds(32), milliseconds(1)):
            index = possibility_for_occurrence(ect, t)
            offset = index * step
            delay = (offset - t) % ect.min_interevent_ns
            assert delay <= step
