"""Property tests for the heuristic's earliest-fit kernel.

``_Occupancy.earliest_fit`` must return the *smallest* offset at or after
the lower bound whose periodic slot pattern avoids every incompatible
placed slot — verified against a brute-force scan.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heuristic import _Occupancy, _PlacementFailure
from repro.core.schedule import periodic_overlap
from repro.model.frame import FrameSlot, FrameVar
from repro.model.stream import Priorities, Stream
from repro.model.topology import Topology


def _topo():
    topo = Topology()
    topo.add_switch("SW")
    topo.add_device("A")
    topo.add_device("B")
    topo.add_link("A", "SW")
    topo.add_link("B", "SW")
    return topo


def _stream(topo, name, period):
    return Stream(
        name=name, path=tuple(topo.shortest_path("A", "B")),
        e2e_ns=period, priority=Priorities.NSH_PL, length_bytes=64,
        period_ns=period,
    )


PERIODS = [60, 120, 240]
LINK = ("A", "SW")


@st.composite
def occupancy_case(draw):
    topo = _topo()
    streams = {}
    slots = []
    for i in range(draw(st.integers(0, 5))):
        period = draw(st.sampled_from(PERIODS))
        duration = draw(st.integers(1, 12))
        offset = draw(st.integers(0, period - duration))
        name = f"s{i}"
        streams[name] = _stream(topo, name, period)
        slots.append(FrameSlot(name, LINK, 0, offset, period, duration))
    new_period = draw(st.sampled_from(PERIODS))
    new_duration = draw(st.integers(1, 12))
    lower = draw(st.integers(0, new_period))
    return topo, streams, slots, new_period, new_duration, lower


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(occupancy_case())
def test_earliest_fit_matches_brute_force(case):
    topo, streams, slots, period, duration, lower = case
    newcomer = _stream(topo, "new", period)
    streams = dict(streams)
    streams["new"] = newcomer
    occupancy = _Occupancy(streams)
    for slot in slots:
        occupancy.add(slot)
    frame = FrameVar("new", LINK, 0, period, duration)

    def conflicts(phi: int) -> bool:
        return any(
            periodic_overlap(phi, duration, period,
                             s.offset_ns, s.duration_ns, s.period_ns)
            for s in slots
        )

    window_max = period - duration
    expected = None
    for phi in range(max(lower, 0), window_max + 1):
        if not conflicts(phi):
            expected = phi
            break

    try:
        got = occupancy.earliest_fit(newcomer, frame, lower, tu_ns=1)
    except _PlacementFailure:
        got = None

    if expected is None:
        assert got is None
    else:
        assert got == expected


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(occupancy_case())
def test_earliest_fit_respects_time_unit(case):
    """With a coarser gate granularity, the result is a tu multiple and
    still conflict-free."""
    topo, streams, slots, period, duration, lower = case
    tu = 4
    # keep every pattern tu-aligned so alignment is achievable
    slots = [
        FrameSlot(s.stream, s.link, 0, (s.offset_ns // tu) * tu,
                  s.period_ns, ((s.duration_ns + tu - 1) // tu) * tu)
        for s in slots
    ]
    duration = ((duration + tu - 1) // tu) * tu
    if duration > period:
        return
    newcomer = _stream(topo, "new", period)
    streams = dict(streams)
    streams["new"] = newcomer
    occupancy = _Occupancy(streams)
    for slot in slots:
        occupancy.add(slot)
    frame = FrameVar("new", LINK, 0, period, duration)
    try:
        got = occupancy.earliest_fit(newcomer, frame, lower, tu_ns=tu)
    except _PlacementFailure:
        return
    assert got % tu == 0
    assert got >= lower
    assert not any(
        periodic_overlap(got, duration, period,
                         s.offset_ns, s.duration_ns, s.period_ns)
        for s in slots
    )
