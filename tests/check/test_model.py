"""The SAT model checker: independent evaluation of every input clause."""

import pytest

from repro.check.model import check_model
from repro.check.proof import CertificateError
from repro.smt import ZERO, Atom, DlSmtSolver, var_ge, var_le


def _atoms():
    # var 1: x - ZERO <= 9   (x <= 9)
    # var 2: y - x <= -3     (y + 3 <= x)
    return {
        1: Atom("x", ZERO, 9),
        2: Atom("y", "x", -3),
    }


def test_satisfying_model_passes():
    cnf = [[1], [2]]
    model = {"x": 9, "y": 2, ZERO: 0}
    assert check_model(cnf, _atoms(), model) == 2


def test_negative_literal_satisfies_clause():
    cnf = [[-1]]  # not(x <= 9)
    model = {"x": 10, ZERO: 0}
    assert check_model(cnf, {1: Atom("x", ZERO, 9)}, model) == 1


def test_falsified_clause_rejected():
    cnf = [[1], [2]]
    model = {"x": 9, "y": 7, ZERO: 0}  # y - x = -2 > -3 falsifies var 2
    with pytest.raises(CertificateError, match="clause"):
        check_model(cnf, _atoms(), model)


def test_missing_model_variable_rejected():
    cnf = [[2]]
    with pytest.raises(CertificateError, match="y"):
        check_model(cnf, _atoms(), {"x": 0, ZERO: 0})


def test_zero_var_defaults_to_zero():
    # the ZERO pseudo-variable need not appear in the model
    assert check_model([[1]], {1: Atom("x", ZERO, 9)}, {"x": 4}) == 1


def test_unknown_atom_for_literal_rejected():
    with pytest.raises(CertificateError, match="atom"):
        check_model([[7]], _atoms(), {"x": 0, "y": 0})


def test_solver_model_passes_checker_end_to_end():
    solver = DlSmtSolver(proof=True)
    solver.require(var_ge("a", 0))
    solver.require(var_le("a", 10))
    solver.require(Atom("a", "b", -2))  # a + 2 <= b
    result = solver.check()
    assert result.sat
    cert = result.certificate
    assert check_model(cert.cnf, cert.atoms, cert.model) == len(cert.cnf)
