"""End-to-end certificates: scheduler, serialization, fixture, CLI, and
the admission service's certify mode.

The invariant under test everywhere: a verdict is trusted because the
*checker* replayed its certificate — the solver is never re-asked.
"""

import itertools
import json
from pathlib import Path

import pytest

from repro.check.proof import CertificateError, verify_certificate
from repro.cli import main
from repro.core import CertifiedInfeasibleError, schedule_etsn
from repro.core.smt_scheduler import schedule_smt
from repro.model.stream import (
    EctStream,
    Priorities,
    Stream,
    TctRequirement,
)
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitEct,
    AdmitTct,
    ScheduleStore,
    ServiceConfig,
    empty_schedule,
)
from repro.smt import DlSmtSolver, diff_ge, var_ge, var_le
from repro.smt.proof import (
    certificate_from_dict,
    certificate_to_dict,
    load_certificate,
    save_certificate,
)
from tests.conftest import MTU_WIRE_NS

FIXTURE = Path(__file__).parent / "fixtures" / "unsat_certificate.json"


def _tct(topo, name, src, dst, length=1500, period=None, share=False):
    period = period or milliseconds(4)
    return Stream(
        name=name, path=tuple(topo.shortest_path(src, dst)),
        e2e_ns=period, length_bytes=length, period_ns=period,
        priority=Priorities.SH_PL if share else Priorities.NSH_PL,
        share=share,
    )


class TestSchedulerCertificates:
    def test_sat_schedule_carries_verified_certificate(self, star_topology):
        streams = [_tct(star_topology, "a", "D1", "D3"),
                   _tct(star_topology, "b", "D2", "D3")]
        schedule = schedule_smt(star_topology, streams, proof=True)
        cert_meta = schedule.meta["certificate"]
        assert cert_meta["status"] == "sat"
        assert cert_meta["verified"] is True
        assert cert_meta["clauses_checked"] > 0

    def test_unsat_raises_certified_infeasible(self, star_topology):
        period = 2 * MTU_WIRE_NS + 1000
        streams = [
            _tct(star_topology, "a", "D1", "D3", length=2 * 1500,
                 period=period),
            _tct(star_topology, "b", "D2", "D3", length=2 * 1500,
                 period=period),
        ]
        with pytest.raises(CertifiedInfeasibleError) as info:
            schedule_smt(star_topology, streams, proof=True)
        exc = info.value
        assert exc.proof_steps > 0
        assert "UNSAT proof checked" in str(exc)
        # the attached certificate re-verifies independently
        assert verify_certificate(exc.certificate) == exc.proof_steps

    def test_etsn_front_end_plumbs_proof(self, paper_example):
        topo, s1, s2 = paper_example
        schedule = schedule_etsn(topo, [s1], [s2], backend="smt", proof=True)
        assert schedule.meta["certificate"]["verified"] is True

    def test_proof_requires_smt_backend(self, star_topology):
        with pytest.raises(ValueError, match="smt"):
            schedule_etsn(star_topology,
                          [_tct(star_topology, "a", "D1", "D3")],
                          backend="heuristic", proof=True)

    def test_no_proof_means_no_certificate(self, star_topology):
        schedule = schedule_smt(
            star_topology, [_tct(star_topology, "a", "D1", "D3")]
        )
        assert "certificate" not in schedule.meta


class TestSerialization:
    def _unsat_certificate(self):
        solver = DlSmtSolver(proof=True)
        for name in ("j0", "j1", "j2"):
            solver.require(var_ge(name, 0))
            solver.require(var_le(name, 5))
        for a, b in itertools.combinations(("j0", "j1", "j2"), 2):
            solver.add_clause([diff_ge(a, b, 5), diff_ge(b, a, 5)])
        result = solver.check()
        assert not result.sat
        return result.certificate

    def test_dict_round_trip_preserves_verification(self):
        cert = self._unsat_certificate()
        steps = verify_certificate(cert)
        restored = certificate_from_dict(certificate_to_dict(cert))
        assert verify_certificate(restored) == steps
        assert restored.atoms == cert.atoms

    def test_file_round_trip(self, tmp_path):
        cert = self._unsat_certificate()
        path = tmp_path / "cert.json"
        save_certificate(path, cert)
        assert verify_certificate(load_certificate(path)) > 0

    def test_committed_fixture_verifies(self):
        cert = load_certificate(FIXTURE)
        assert cert.status == "unsat"
        assert verify_certificate(cert) == len(cert.proof) > 0

    def test_tampered_fixture_fails(self, tmp_path):
        data = json.loads(FIXTURE.read_text())
        # drop the closing empty-clause step
        data["proof"] = [s for s in data["proof"] if s["kind"] != "empty"]
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(data))
        with pytest.raises(CertificateError):
            verify_certificate(load_certificate(path))


class TestCheckCli:
    def test_proof_command_accepts_fixture(self, capsys):
        assert main(["check", "proof", str(FIXTURE)]) == 0
        assert "OK: unsat certificate verified" in capsys.readouterr().out

    def test_proof_command_rejects_tampered(self, tmp_path, capsys):
        data = json.loads(FIXTURE.read_text())
        data["proof"] = [s for s in data["proof"] if s["kind"] != "empty"]
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(data))
        assert main(["check", "proof", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_model_command_checks_sat_certificate(self, tmp_path, capsys):
        solver = DlSmtSolver(proof=True)
        solver.require(var_ge("x", 2))
        solver.require(var_le("x", 4))
        result = solver.check()
        assert result.sat
        path = tmp_path / "sat.json"
        save_certificate(path, result.certificate)
        assert main(["check", "model", str(path)]) == 0
        assert "OK: sat certificate verified" in capsys.readouterr().out

    def test_status_mismatch_is_usage_error(self, capsys):
        assert main(["check", "model", str(FIXTURE)]) == 2
        assert "unsat" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["check", "proof", "/no/such/file.json"]) == 2

    def test_lint_strict_flags_finding(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "gcl.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("GUARD = 1.5\n")
        assert main(["check", "lint", str(tmp_path), "--strict"]) == 1
        out = capsys.readouterr()
        assert "float-arith" in out.out
        # non-strict: report but do not fail
        assert main(["check", "lint", str(tmp_path)]) == 0

    def test_lint_clean_tree_exits_zero(self, tmp_path):
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert main(["check", "lint", str(tmp_path), "--strict"]) == 0


class TestServiceCertify:
    def _service(self, topo):
        return AdmissionService(
            ScheduleStore(empty_schedule(topo)),
            config=ServiceConfig(backend="smt", certify=True),
        )

    def test_certify_requires_smt_backend(self, star_topology):
        with pytest.raises(ValueError, match="smt"):
            AdmissionService(
                ScheduleStore(empty_schedule(star_topology)),
                config=ServiceConfig(backend="heuristic", certify=True),
            )

    def test_certified_admission_counts_verified_sat(self, star_topology):
        service = self._service(star_topology)
        assert service.submit(AdmitTct(TctRequirement(
            name="base", source="D1", destination="D3",
            period_ns=milliseconds(8), length_bytes=1500,
            priority=Priorities.SH_PL, share=True,
        ))).accepted
        assert service.submit(AdmitEct(EctStream(
            name="alarm", source="D2", destination="D3",
            min_interevent_ns=milliseconds(16), length_bytes=512,
            possibilities=4,
        ))).accepted
        # sharing TCT with ECT present climbs to the full SMT rung,
        # which now runs with proof=True
        decision = service.submit(AdmitTct(TctRequirement(
            name="late", source="D2", destination="D3",
            period_ns=milliseconds(8), length_bytes=1500,
            priority=Priorities.SH_PL, share=True,
        )))
        assert decision.accepted
        assert decision.rung == "full"
        counters = service.metrics.counters_with_prefix("certificates")
        assert counters.get("verified_sat", 0) >= 1

    def test_certified_rejection_counts_verified_unsat(self, star_topology):
        service = self._service(star_topology)
        period = 6 * MTU_WIRE_NS
        for i in range(5):
            assert service.submit(AdmitTct(TctRequirement(
                name=f"s{i}", source="D1" if i % 2 else "D2",
                destination="D3", period_ns=period, length_bytes=1500,
                priority=Priorities.NSH_PL,
            ))).accepted
        decision = service.submit(AdmitTct(TctRequirement(
            name="overload", source="D2", destination="D3",
            period_ns=period, length_bytes=1500,
            priority=Priorities.NSH_PL,
        )))
        assert not decision.accepted
        counters = service.metrics.counters_with_prefix("certificates")
        assert counters.get("verified_unsat", 0) >= 1
        assert counters.get("failed", 0) == 0
