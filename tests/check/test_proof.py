"""The trusted UNSAT checker: genuine proofs pass, tampered proofs fail.

Every negative test here mutates a *real* certificate produced by the
solver — the checker must reject the forgery without ever consulting
the solver again.
"""

import itertools

import pytest

from repro.check.proof import (
    CertificateError,
    check_unsat_proof,
    negate_atom,
    verify_certificate,
)
from repro.smt import Atom, DlSmtSolver, diff_ge, var_ge, var_le
from repro.smt.proof import ProofStep, STEP_EMPTY, STEP_LEARNED, STEP_LEMMA


def _unsat_certificate():
    """x>=0, x<=17 for five jobs spaced >=5 apart: only four fit."""
    solver = DlSmtSolver(proof=True)
    names = [f"j{i}" for i in range(5)]
    for name in names:
        solver.require(var_ge(name, 0))
        solver.require(var_le(name, 17))
    for a, b in itertools.combinations(names, 2):
        solver.add_clause([diff_ge(a, b, 5), diff_ge(b, a, 5)])
    result = solver.check()
    assert not result.sat
    return result.certificate


def _tiny_unsat_certificate():
    """x - y <= -1 and y - x <= -1: a two-atom contradiction."""
    solver = DlSmtSolver(proof=True)
    solver.require(Atom("x", "y", -1))
    solver.require(Atom("y", "x", -1))
    result = solver.check()
    assert not result.sat
    return result.certificate


@pytest.fixture(scope="module")
def certificate():
    return _unsat_certificate()


def test_negate_atom_flips_inequality():
    # not(x - y <= c)  <=>  y - x <= -c - 1
    assert negate_atom(Atom("x", "y", 3)) == Atom("y", "x", -4)
    assert negate_atom(negate_atom(Atom("x", "y", 3))) == Atom("x", "y", 3)


def test_genuine_proof_verifies(certificate):
    steps = verify_certificate(certificate)
    assert steps == len(certificate.proof) > 0


def test_tiny_proof_verifies():
    cert = _tiny_unsat_certificate()
    assert verify_certificate(cert) == len(cert.proof)


def test_missing_empty_step_rejected(certificate):
    proof = [s for s in certificate.proof if s.kind != STEP_EMPTY]
    with pytest.raises(CertificateError, match="empty clause"):
        check_unsat_proof(certificate.cnf, proof, certificate.atoms)


def test_dropped_lemma_rejected(certificate):
    lemma_index = next(i for i, s in enumerate(certificate.proof)
                       if s.kind == STEP_LEMMA)
    proof = (certificate.proof[:lemma_index]
             + certificate.proof[lemma_index + 1:])
    with pytest.raises(CertificateError):
        check_unsat_proof(certificate.cnf, proof, certificate.atoms)


def test_nonnegative_cycle_witness_rejected(certificate):
    proof = list(certificate.proof)
    index = next(i for i, s in enumerate(proof) if s.kind == STEP_LEMMA)
    step = proof[index]
    # weaken one witness edge so the cycle no longer sums below zero
    loose = [Atom(a.x, a.y, a.c + 1000) for a in step.cycle]
    proof[index] = ProofStep(kind=STEP_LEMMA, clause=step.clause, cycle=loose)
    with pytest.raises(CertificateError, match="cycle|witness|match"):
        check_unsat_proof(certificate.cnf, proof, certificate.atoms)


def test_broken_cycle_chain_rejected():
    cert = _tiny_unsat_certificate()
    proof = list(cert.proof)
    index = next(i for i, s in enumerate(proof) if s.kind == STEP_LEMMA)
    step = proof[index]
    broken = [Atom(a.x, "nowhere", a.c) for a in step.cycle]
    proof[index] = ProofStep(kind=STEP_LEMMA, clause=step.clause,
                             cycle=broken)
    with pytest.raises(CertificateError):
        check_unsat_proof(cert.cnf, proof, cert.atoms)


def test_non_rup_learned_clause_rejected(certificate):
    proof = list(certificate.proof)
    fresh = max(abs(l) for c in certificate.cnf for l in c) + 1
    # a clause over an unconstrained variable can never be RUP-derived
    # from the input CNF alone, so forge it as the very first step —
    # later in the proof the database becomes refutable and every
    # clause is (soundly) RUP
    proof.insert(0, ProofStep(kind=STEP_LEARNED, clause=[fresh]))
    with pytest.raises(CertificateError, match="unit propagation"):
        check_unsat_proof(certificate.cnf, proof, certificate.atoms)


def test_satisfiable_cnf_cannot_fake_empty_clause():
    # claim UNSAT for a trivially satisfiable formula
    cnf = [[1, 2], [-1, 2]]
    proof = [ProofStep(kind=STEP_EMPTY, clause=[])]
    with pytest.raises(CertificateError):
        check_unsat_proof(cnf, proof, {})


def test_lemma_clause_mismatching_witness_rejected():
    cert = _tiny_unsat_certificate()
    proof = list(cert.proof)
    index = next(i for i, s in enumerate(proof) if s.kind == STEP_LEMMA)
    step = proof[index]
    # witness atoms that do not correspond to the lemma's literals
    wrong = [Atom("a", "b", -1), Atom("b", "a", -1)]
    proof[index] = ProofStep(kind=STEP_LEMMA, clause=step.clause, cycle=wrong)
    with pytest.raises(CertificateError, match="match|witness"):
        check_unsat_proof(cert.cnf, proof, cert.atoms)


def test_sat_status_dispatches_to_model_check():
    solver = DlSmtSolver(proof=True)
    solver.require(var_ge("x", 3))
    solver.require(var_le("x", 5))
    result = solver.check()
    assert result.sat
    checked = verify_certificate(result.certificate)
    assert checked == len(result.certificate.cnf)


def test_unknown_status_rejected(certificate):
    from repro.smt.proof import Certificate

    bogus = Certificate(status="maybe", cnf=certificate.cnf,
                        atoms=certificate.atoms)
    with pytest.raises(CertificateError, match="maybe"):
        verify_certificate(bogus)
