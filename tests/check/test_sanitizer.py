"""Runtime lock-order sanitizer: gating, inversion/reentrancy/group
detection, multi-thread behavior, and the off-mode zero-cost contract."""

import threading

import pytest

from repro.check.sanitizer import (
    ENV_VAR,
    LockOrderViolation,
    OrderedLock,
    make_lock,
    reset_observed_edges,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_observed_edges()
    yield
    reset_observed_edges()


class TestGating:
    def test_off_returns_plain_lock(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        lock = make_lock("X._lock")
        assert type(lock) is type(threading.Lock())

    def test_zero_string_is_off(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        assert type(make_lock("X._lock")) is type(threading.Lock())

    def test_on_returns_ordered_lock(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        lock = make_lock("X._lock", group="g", key="a")
        assert isinstance(lock, OrderedLock)
        assert lock.name == "X._lock"
        assert (lock.group, lock.key) == ("g", "a")


class TestInversion:
    def test_consistent_order_is_fine(self):
        a, b = OrderedLock("A._lock"), OrderedLock("B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_inversion_raises_with_both_witnesses(self):
        a, b = OrderedLock("A._lock"), OrderedLock("B._lock")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation) as exc:
                a.acquire()
        message = str(exc.value)
        assert "A._lock" in message and "B._lock" in message
        assert "earlier" in message

    def test_edges_are_per_name_across_instances(self):
        # two stores + two services: the edge is between the *names*,
        # so instance 2 inverting against instance 1's order is caught
        s1, s2 = OrderedLock("S._lock"), OrderedLock("S._lock")
        t1, t2 = OrderedLock("T._lock"), OrderedLock("T._lock")
        with s1:
            with t1:
                pass
        with t2:
            with pytest.raises(LockOrderViolation):
                s2.acquire()

    def test_inversion_observed_across_threads(self):
        a, b = OrderedLock("A._lock"), OrderedLock("B._lock")
        done = threading.Event()

        def forward():
            with a:
                with b:
                    pass
            done.set()

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        assert done.is_set()
        with b:
            with pytest.raises(LockOrderViolation):
                a.acquire()

    def test_reset_forgets_edges(self):
        a, b = OrderedLock("A._lock"), OrderedLock("B._lock")
        with a:
            with b:
                pass
        reset_observed_edges()
        with b:
            with a:  # no recorded reverse edge any more
                pass


class TestReentrancy:
    def test_reentrant_acquisition_raises(self):
        lock = OrderedLock("A._lock")
        with lock:
            with pytest.raises(LockOrderViolation) as exc:
                lock.acquire()
        assert "re-entrant" in str(exc.value)

    def test_two_instances_of_one_name_do_not_trip_reentrancy(self):
        # distinct objects sharing a name: object-level reentrancy
        # does not apply (that is the ordered-group rule's job)
        first, second = OrderedLock("S._lock"), OrderedLock("S._lock")
        with first:
            with second:
                pass


class TestOrderedGroup:
    def test_ascending_keys_allowed(self):
        locks = [
            OrderedLock("P.lock", group="shards", key=k)
            for k in ("a", "b", "c")
        ]
        for lock in locks:
            lock.acquire()
        for lock in reversed(locks):
            lock.release()

    def test_descending_keys_raise(self):
        hi = OrderedLock("P.lock", group="shards", key="b")
        lo = OrderedLock("P.lock", group="shards", key="a")
        hi.acquire()
        with pytest.raises(LockOrderViolation) as exc:
            lo.acquire()
        hi.release()
        assert "sorted-locks" in str(exc.value)

    def test_different_groups_do_not_interact(self):
        one = OrderedLock("P.lock", group="left", key="z")
        two = OrderedLock("P.lock", group="right", key="a")
        with one:
            with two:
                pass


class TestLockProtocol:
    def test_out_of_lifo_release_is_legal(self):
        # the two-phase rollback path releases in reverse order of a
        # *subset*; threading.Lock allows any release order and so
        # does the sanitizer
        a = OrderedLock("A._lock")
        b = OrderedLock("B._lock")
        a.acquire()
        b.acquire()
        a.release()
        b.release()

    def test_locked_and_nonblocking_acquire(self):
        lock = OrderedLock("A._lock")
        assert not lock.locked()
        assert lock.acquire(blocking=False)
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_contention_blocks_like_a_real_lock(self):
        lock = OrderedLock("A._lock")
        acquired_by_worker = threading.Event()
        release_worker = threading.Event()

        def hold():
            with lock:
                acquired_by_worker.set()
                release_worker.wait(timeout=5)

        worker = threading.Thread(target=hold)
        worker.start()
        assert acquired_by_worker.wait(timeout=5)
        assert not lock.acquire(blocking=False)
        release_worker.set()
        worker.join()
        assert lock.acquire(blocking=False)
        lock.release()


class TestRuntimeWiring:
    def test_store_and_service_run_sanitized(self, monkeypatch):
        """The real runtime, constructed under the sanitizer, performs
        a full admission without tripping — the dynamic counterpart of
        flow's zero-findings gate on src."""
        monkeypatch.setenv(ENV_VAR, "1")
        from repro.model.stream import Priorities, TctRequirement
        from repro.model.topology import Topology
        from repro.model.units import MBPS_100, milliseconds
        from repro.service import (
            AdmissionService, AdmitTct, ScheduleStore, empty_schedule,
        )

        topo = Topology()
        topo.add_switch("SW1")
        for device in ("D1", "D2"):
            topo.add_device(device)
            topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
        store = ScheduleStore(empty_schedule(topo))
        assert isinstance(store._lock, OrderedLock)
        service = AdmissionService(store)
        assert isinstance(service._write_lock, OrderedLock)
        decision = service.submit(AdmitTct(TctRequirement(
            name="t0", source="D1", destination="D2",
            period_ns=milliseconds(8), length_bytes=400,
            priority=Priorities.NSH_PH,
        )))
        assert decision.accepted
