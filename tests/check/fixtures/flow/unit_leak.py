"""Fixture: a ``_us`` value leaking into ``_ns`` call boundaries."""


def gate_open_ns(window_ns: int) -> int:
    return window_ns


def schedule_gate(slack_us: int) -> int:
    return gate_open_ns(slack_us)


def schedule_gate_keyword(slack_us: int) -> int:
    return gate_open_ns(window_ns=slack_us)


def widen_window_ns(window_ns: int, margin_us: int) -> int:
    return window_ns + margin_us
