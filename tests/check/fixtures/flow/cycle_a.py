"""Fixture: first half of a three-lock cycle spanning two modules.

Alpha holds its lock while calling into Beta; Beta holds its lock
while calling into :mod:`cycle_b`'s Gamma.  ``cycle_b.Gamma.backward``
closes the loop back to Alpha, so the three locks form a cycle in the
may-hold-before relation.  Never imported at runtime — parsed only.
"""

import threading
from typing import Optional

from cycle_b import Gamma


class Alpha:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.beta: Optional["Beta"] = None

    def forward(self) -> None:
        with self._lock:
            self.beta.middle()


class Beta:
    def __init__(self, gamma: "Gamma") -> None:
        self._lock = threading.Lock()
        self.gamma = gamma

    def middle(self) -> None:
        with self._lock:
            self.gamma.finish()
