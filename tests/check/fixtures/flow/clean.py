"""Fixture: locks and units used correctly — zero findings expected
from both ``repro check flow`` and ``repro check units``."""

import threading
from typing import List, Optional

from repro.model.units import NS_PER_US, ns_to_us


class Leaf:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def bump(self) -> None:
        with self._lock:
            self._count += 1


class Root:
    def __init__(self, leaf: "Leaf") -> None:
        self._lock = threading.Lock()
        self.leaf = leaf
        self._tallies: List[int] = []

    def tick(self) -> None:
        with self._lock:
            self._tallies.append(1)
            self.leaf.bump()


def budget_ns(period_ns: int, slack_ns: int) -> int:
    total_ns = period_ns + slack_ns
    return total_ns


def widen_ns(window_ns: int, margin_us: int) -> int:
    return window_ns + margin_us * NS_PER_US


def report_us(window_ns: int) -> float:
    return ns_to_us(window_ns)
