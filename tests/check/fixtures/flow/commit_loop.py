"""Fixture: same-identity loop acquisitions, sorted vs unsorted.

``SortedCommit`` mirrors the two-phase commit discipline: the member
list is assigned from ``sorted(...)``, so acquiring one lock per
iteration is deterministic and deadlock-free — a checked ordered site,
not a finding.  ``UnsortedCommit`` drops the ``sorted`` and must be
flagged as lock-reentrant.  Never imported at runtime.
"""

import threading
from dataclasses import dataclass
from typing import List


@dataclass
class Member:
    name: str
    lock: threading.Lock


class SortedCommit:
    def __init__(self, members: List[Member]) -> None:
        self._members = sorted(members, key=lambda m: m.name)

    def commit(self) -> None:
        held: List[Member] = []
        try:
            for member in self._members:
                member.lock.acquire()
                held.append(member)
        finally:
            for member in reversed(held):
                member.lock.release()


class UnsortedCommit:
    def __init__(self, members: List[Member]) -> None:
        self._members = list(members)

    def commit(self) -> None:
        held: List[Member] = []
        try:
            for member in self._members:
                member.lock.acquire()
                held.append(member)
        finally:
            for member in reversed(held):
                member.lock.release()
