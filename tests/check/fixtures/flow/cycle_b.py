"""Fixture: second half of the three-lock cycle (see cycle_a)."""

import threading

from cycle_a import Alpha


class Gamma:
    def __init__(self, alpha: "Alpha") -> None:
        self._lock = threading.Lock()
        self.alpha = alpha

    def finish(self) -> None:
        with self._lock:
            pass

    def backward(self) -> None:
        with self._lock:
            self.alpha.forward()
