"""Fixture: A -> B -> A re-entrant acquisition.

``Outer.enter`` holds ``Outer._lock`` and calls ``Inner.work``, which
calls back into ``Outer.reenter`` — re-acquiring the same
non-reentrant lock through the call chain.  Never imported at runtime.
"""

import threading
from typing import Optional


class Outer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.inner: Optional["Inner"] = None

    def enter(self) -> None:
        with self._lock:
            self.inner.work()

    def reenter(self) -> None:
        with self._lock:
            pass


class Inner:
    def __init__(self, outer: "Outer") -> None:
        self.outer = outer

    def work(self) -> None:
        self.outer.reenter()
