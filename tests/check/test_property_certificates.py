"""Property test: every solver verdict on random QF_IDL instances is
certified — UNSAT proofs replay through the checker, SAT models satisfy
every input constraint.

``derandomize=True`` keeps the corpus fixed and tier-1 fast; bounds on
variables/clauses keep each solve well under a millisecond.
"""

from hypothesis import given, settings, strategies as st

from repro.check.model import check_model
from repro.check.proof import verify_certificate
from repro.smt import Atom, DlSmtSolver, ZERO

VARIABLES = ("v0", "v1", "v2", "v3")


def _atoms():
    """x - y <= c over a 4-variable pool (plus ZERO for unary bounds)."""
    names = st.sampled_from(VARIABLES + (ZERO,))
    return st.tuples(names, names, st.integers(-8, 8)).filter(
        lambda t: t[0] != t[1]
    ).map(lambda t: Atom(*t))


@st.composite
def _instances(draw):
    n_clauses = draw(st.integers(1, 12))
    return [
        draw(st.lists(_atoms(), min_size=1, max_size=3))
        for _ in range(n_clauses)
    ]


@settings(max_examples=60, deadline=None, derandomize=True)
@given(_instances())
def test_every_verdict_is_certified(clauses):
    solver = DlSmtSolver(proof=True)
    for disjuncts in clauses:
        solver.add_clause(disjuncts)
    result = solver.check()
    cert = result.certificate
    assert cert is not None

    if result.sat:
        assert cert.status == "sat"
        # every input clause evaluates true under the model
        assert check_model(cert.cnf, cert.atoms, cert.model) == len(cert.cnf)
        # and the generic dispatcher agrees
        assert verify_certificate(cert) == len(cert.cnf)
    else:
        assert cert.status == "unsat"
        assert verify_certificate(cert) == len(cert.proof) > 0


@settings(max_examples=25, deadline=None, derandomize=True)
@given(_instances(), _instances())
def test_combined_instances_still_certify(first, second):
    """Two instances concatenated (more conflict-dense): same property."""
    solver = DlSmtSolver(proof=True)
    for disjuncts in first + second:
        solver.add_clause(disjuncts)
    result = solver.check()
    assert verify_certificate(result.certificate) > 0
