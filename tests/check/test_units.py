"""Time-unit analysis: per-rule expectations on the leak fixture,
conversion-constant handling, rule selection, suppressions, and the
acceptance gate that the shipped tree is clean."""

import json
from pathlib import Path

import pytest

from repro.check.units_analysis import (
    DEFAULT_RULES,
    UNITS_RULES,
    analyze_units,
)

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def _rules(report):
    return [f.rule for f in report.findings]


def _analyze_source(tmp_path, source, rules=DEFAULT_RULES):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return analyze_units([str(path)], rules=rules)


class TestLeakFixture:
    def test_us_to_ns_positional_leak(self):
        report = analyze_units([str(FIXTURES / "unit_leak.py")])
        calls = [f for f in report.findings if f.rule == "unit-call"]
        assert len(calls) == 2  # positional and keyword form
        assert any("window_ns" in f.message and "us" in f.message
                   for f in calls)

    def test_mixed_unit_arithmetic(self):
        report = analyze_units([str(FIXTURES / "unit_leak.py")])
        mixed = [f for f in report.findings if f.rule == "unit-mismatch"]
        assert len(mixed) == 1
        assert "ns" in mixed[0].message and "us" in mixed[0].message

    def test_clean_fixture_is_clean(self):
        report = analyze_units([str(FIXTURES / "clean.py")])
        assert report.findings == []


class TestRules:
    def test_unit_return(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def window_ns(gap_us: int) -> int:\n    return gap_us\n",
        )
        assert _rules(report) == ["unit-return"]

    def test_assignment_mismatch(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(gap_us: int):\n    deadline_ns = gap_us\n",
        )
        assert _rules(report) == ["unit-mismatch"]

    def test_comparison_mismatch(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(a_ns: int, b_ms: int):\n    return a_ns < b_ms\n",
        )
        assert _rules(report) == ["unit-mismatch"]

    def test_min_max_mismatch(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(a_ns: int, b_us: int):\n    return max(a_ns, b_us)\n",
        )
        assert _rules(report) == ["unit-mismatch"]

    def test_literals_are_polymorphic(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(a_ns: int):\n    return a_ns + 100\n",
        )
        assert report.findings == []

    def test_unknown_units_are_compatible(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(a_ns: int, other):\n    return a_ns + other\n",
        )
        assert report.findings == []

    def test_unit_literal_is_off_by_default(self, tmp_path):
        source = (
            "def takes(period_ns: int):\n    return period_ns\n"
            "def f():\n    return takes(period_ns=4_000_000)\n"
        )
        assert _analyze_source(tmp_path, source).findings == []
        pedantic = _analyze_source(
            tmp_path, source, rules=("unit-literal",)
        )
        assert _rules(pedantic) == ["unit-literal"]

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _analyze_source(tmp_path, "x = 1\n", rules=("bogus",))


class TestConversions:
    def test_ns_per_us_scales_us_to_ns(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "NS_PER_US = 1_000\n"
            "def f(gap_us: int):\n"
            "    window_ns = gap_us * NS_PER_US\n"
            "    return window_ns\n",
        )
        assert report.findings == []

    def test_ns_per_us_rejects_ms_operand(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "NS_PER_US = 1_000\n"
            "def f(gap_ms: int):\n"
            "    window_ns = gap_ms * NS_PER_US\n"
            "    return window_ns\n",
        )
        assert _rules(report) == ["unit-mismatch"]

    def test_floor_div_converts_down(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "NS_PER_MS = 1_000_000\n"
            "def f(span_ns: int):\n"
            "    span_ms = span_ns // NS_PER_MS\n"
            "    return span_ms\n",
        )
        assert report.findings == []

    def test_constant_is_an_ns_quantity_additively(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "NS_PER_S = 1_000_000_000\n"
            "def f(value_ns: int):\n"
            "    return value_ns >= NS_PER_S\n",
        )
        assert report.findings == []

    def test_model_units_converters_check_their_argument(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "from repro.model.units import microseconds\n"
            "def f(budget_ns: int):\n"
            "    return microseconds(budget_ns)\n",
        )
        assert _rules(report) == ["unit-call"]
        assert "microseconds" in report.findings[0].message

    def test_converter_return_unit_propagates(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "from repro.model.units import milliseconds\n"
            "def f(slack_us: int):\n"
            "    gap_ns = milliseconds(5)\n"
            "    return gap_ns + slack_us\n",
        )
        assert _rules(report) == ["unit-mismatch"]


class TestSuppressions:
    def test_flow_ok_suppresses(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(gap_us: int):\n"
            "    deadline_ns = gap_us  # repro: flow-ok[unit-mismatch]\n",
        )
        assert report.findings == []

    def test_other_rule_does_not_apply(self, tmp_path):
        report = _analyze_source(
            tmp_path,
            "def f(gap_us: int):\n"
            "    deadline_ns = gap_us  # repro: flow-ok[unit-call]\n",
        )
        assert _rules(report) == ["unit-mismatch"]


def test_json_round_trip():
    report = analyze_units([str(FIXTURES / "unit_leak.py")])
    data = json.loads(report.to_json())
    assert data["rules"] == list(DEFAULT_RULES)
    assert all(f["rule"] in UNITS_RULES for f in data["findings"])


def test_shipped_tree_is_clean():
    report = analyze_units(["src/repro"])
    assert report.findings == []
