"""Lock-order analysis: fixture expectations, witness chains, the
sorted-loop checked invariant, suppressions, and the acceptance gate
that the shipped tree itself is clean."""

import json
from pathlib import Path

from repro.check.flow import FLOW_RULES, analyze_flow

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def _rules(report):
    return [f.rule for f in report.findings]


class TestThreeLockCycle:
    def test_cycle_reported_across_module_pair(self):
        report = analyze_flow([
            str(FIXTURES / "cycle_a.py"), str(FIXTURES / "cycle_b.py"),
        ])
        cycles = [f for f in report.findings if f.rule == "lock-order"]
        assert len(cycles) == 1
        finding = cycles[0]
        assert set(finding.locks) == {
            "cycle_a.Alpha._lock", "cycle_a.Beta._lock",
            "cycle_b.Gamma._lock",
        }
        # one witness edge per lock of the cycle, each with a chain
        assert len(finding.witnesses) == 3
        covered = {(w.held, w.acquired) for w in finding.witnesses}
        assert ("cycle_a.Alpha._lock", "cycle_a.Beta._lock") in covered
        assert ("cycle_b.Gamma._lock", "cycle_a.Alpha._lock") in covered

    def test_witness_chain_names_real_call_path(self):
        report = analyze_flow([
            str(FIXTURES / "cycle_a.py"), str(FIXTURES / "cycle_b.py"),
        ])
        finding = [f for f in report.findings if f.rule == "lock-order"][0]
        edge = {
            (w.held, w.acquired): w for w in finding.witnesses
        }[("cycle_a.Alpha._lock", "cycle_a.Beta._lock")]
        assert [frame.function for frame in edge.chain] == [
            "cycle_a.Alpha.forward", "cycle_a.Beta.middle",
        ]

    def test_half_of_the_cycle_alone_is_clean(self):
        # without cycle_b's backward() closing the loop there is no
        # cycle to report (cycle_a still calls into the unresolved
        # import, which contributes nothing — conservative silence)
        report = analyze_flow([str(FIXTURES / "cycle_a.py")])
        assert [f for f in report.findings if f.rule == "lock-order"] == []


class TestReentrant:
    def test_a_b_a_chain_flagged(self):
        report = analyze_flow([str(FIXTURES / "reentrant.py")])
        assert _rules(report) == ["lock-reentrant"]
        finding = report.findings[0]
        assert finding.locks == ("reentrant.Outer._lock",)
        chain = [f.function for f in finding.witnesses[0].chain]
        assert chain == [
            "reentrant.Outer.enter", "reentrant.Inner.work",
            "reentrant.Outer.reenter",
        ]

    def test_finding_anchors_on_the_holding_site(self):
        report = analyze_flow([str(FIXTURES / "reentrant.py")])
        finding = report.findings[0]
        source = (FIXTURES / "reentrant.py").read_text().splitlines()
        assert "self.inner.work()" in source[finding.line - 1]


class TestSortedLoopInvariant:
    def test_sorted_commit_is_a_checked_ordered_site(self):
        report = analyze_flow([str(FIXTURES / "commit_loop.py")])
        assert len(report.ordered_sites) == 1
        assert report.ordered_sites[0].function == (
            "commit_loop.SortedCommit.commit"
        )

    def test_unsorted_commit_is_flagged(self):
        report = analyze_flow([str(FIXTURES / "commit_loop.py")])
        assert _rules(report) == ["lock-reentrant"]
        assert report.findings[0].witnesses[0].chain[0].function == (
            "commit_loop.UnsortedCommit.commit"
        )
        assert "unspecified order" in report.findings[0].message


class TestCleanFixture:
    def test_clean_module_has_zero_findings(self):
        report = analyze_flow([str(FIXTURES / "clean.py")])
        assert report.findings == []
        # the consistent root -> leaf order is still *seen* as an edge
        assert [(e.held, e.acquired) for e in report.edges] == [
            ("clean.Root._lock", "clean.Leaf._lock"),
        ]


class TestSuppressions:
    def _write(self, tmp_path, mark):
        source = (
            "import threading\n"
            "from typing import Optional\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.b: Optional['B'] = None\n"
            "    def step(self):\n"
            "        with self._lock:\n"
            f"            self.b.poke(){mark}\n"
            "class B:\n"
            "    def __init__(self, a: 'A'):\n"
            "        self._lock = threading.Lock()\n"
            "        self.a = a\n"
            "    def poke(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "    def reverse(self):\n"
            "        with self._lock:\n"
            "            self.a.step()\n"
        )
        path = tmp_path / "inversion.py"
        path.write_text(source)
        return str(path)

    def test_unsuppressed_inversion_found(self, tmp_path):
        report = analyze_flow([self._write(tmp_path, "")])
        assert "lock-order" in _rules(report)

    def test_flow_ok_on_origin_line_suppresses(self, tmp_path):
        path = self._write(tmp_path, "  # repro: flow-ok[lock-order]")
        report = analyze_flow([path])
        assert "lock-order" not in _rules(report)

    def test_blanket_flow_ok_suppresses(self, tmp_path):
        path = self._write(tmp_path, "  # repro: flow-ok")
        report = analyze_flow([path])
        assert "lock-order" not in _rules(report)

    def test_flow_ok_for_other_rule_does_not_apply(self, tmp_path):
        path = self._write(tmp_path, "  # repro: flow-ok[lock-reentrant]")
        report = analyze_flow([path])
        assert "lock-order" in _rules(report)


class TestReport:
    def test_json_round_trip(self):
        report = analyze_flow([
            str(FIXTURES / "cycle_a.py"), str(FIXTURES / "cycle_b.py"),
        ])
        data = json.loads(report.to_json())
        assert data["findings"][0]["rule"] in FLOW_RULES
        assert data["findings"][0]["witnesses"][0]["chain"][0]["function"]
        assert data["functions_analyzed"] == report.functions_analyzed

    def test_edges_are_deduplicated_to_shortest_witness(self):
        report = analyze_flow(["src/repro"])
        seen = set()
        for edge in report.edges:
            assert (edge.held, edge.acquired) not in seen
            seen.add((edge.held, edge.acquired))


def test_shipped_tree_is_clean():
    report = analyze_flow(["src/repro"])
    assert report.findings == []
    assert report.truncated_chains == 0


def test_shipped_tree_lock_hierarchy_is_what_we_designed():
    """The may-hold-before graph on src is the documented hierarchy:
    coordinator/shard locks above service locks above store locks
    above leaf instrument locks — and the two-phase commit loop is a
    checked ordered site, not a finding."""
    report = analyze_flow(["src/repro"])
    edges = {(e.held.rsplit(".", 2)[-2] + "." + e.held.rsplit(".", 1)[-1],
              e.acquired.rsplit(".", 2)[-2] + "." +
              e.acquired.rsplit(".", 1)[-1])
             for e in report.edges}
    assert ("_ShardRuntime.lock", "AdmissionService._write_lock") in edges
    assert ("AdmissionService._write_lock", "ScheduleStore._lock") in edges
    assert ("ScheduleStore._lock", "Gauge._lock") in edges
    assert ("Participant.lock", "ScheduleStore._lock") in edges
    # the sorted-shard-locks discipline in two-phase commit
    assert any(
        site.function.endswith("CrossShardPublish.commit")
        for site in report.ordered_sites
    )
