"""One regression test per lint rule, plus suppressions and the
acceptance gate that the shipped tree itself is clean."""

from repro.check.lint import ALL_RULES, lint_paths, lint_source


def _rules(findings):
    return [f.rule for f in findings]


def _lint(source, path="src/repro/core/gcl.py", rules=None):
    return lint_source(source, path, rules=rules)


class TestWallClock:
    def test_time_time_in_sim_flagged(self):
        findings = _lint("import time\nt = time.time()\n",
                         path="src/repro/sim/engine.py")
        assert _rules(findings) == ["wall-clock"]
        assert "time.time" in findings[0].message

    def test_monotonic_in_smt_flagged(self):
        findings = _lint("import time\nt = time.monotonic()\n",
                         path="src/repro/smt/sat.py")
        assert _rules(findings) == ["wall-clock"]

    def test_datetime_now_in_core_flagged(self):
        findings = _lint(
            "import datetime\nnow = datetime.datetime.now()\n",
            path="src/repro/core/schedule.py",
        )
        assert _rules(findings) == ["wall-clock"]

    def test_from_import_call_flagged(self):
        findings = _lint("from time import monotonic\nt = monotonic()\n",
                         path="src/repro/sim/engine.py")
        assert _rules(findings) == ["wall-clock"]

    def test_outside_scope_allowed(self):
        # benchmarks and service code may read real clocks
        assert _lint("import time\nt = time.time()\n",
                     path="benchmarks/test_perf.py") == []
        assert _lint("import time\nt = time.monotonic()\n",
                     path="src/repro/service/admission.py") == []


class TestFloatArith:
    def test_float_literal_flagged(self):
        findings = _lint("GUARD = 1.5\n")
        assert _rules(findings) == ["float-arith"]

    def test_true_division_flagged(self):
        findings = _lint("def half(x):\n    return x / 2\n")
        assert _rules(findings) == ["float-arith"]
        assert "division" in findings[0].message

    def test_floor_division_and_int_literal_allowed(self):
        assert _lint("def half(x):\n    return x // 2\n") == []

    def test_outside_integer_ns_modules_allowed(self):
        # VSIDS activities in the SAT core are legitimately floats
        assert _lint("DECAY = 0.95\n", path="src/repro/smt/sat.py") == []


class TestLockDiscipline:
    LOCKED = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = {}\n"
        "    def add(self, k, v):\n"
        "        with self._lock:\n"
        "            self._items[k] = v\n"
    )
    UNLOCKED = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = {}\n"
        "    def add(self, k, v):\n"
        "        self._items[k] = v\n"
    )

    def test_mutation_under_lock_allowed(self):
        assert _lint(self.LOCKED, path="src/repro/service/metrics.py") == []

    def test_mutation_outside_lock_flagged(self):
        findings = _lint(self.UNLOCKED, path="src/repro/service/metrics.py")
        assert _rules(findings) == ["lock-discipline"]
        assert "_items" in findings[0].message

    def test_mutator_call_outside_lock_flagged(self):
        source = self.UNLOCKED.replace(
            "        self._items[k] = v\n",
            "        self._items.update({k: v})\n",
        )
        findings = _lint(source, path="src/repro/service/metrics.py")
        assert _rules(findings) == ["lock-discipline"]

    def test_class_without_lock_exempt(self):
        source = (
            "class Bag:\n"
            "    def __init__(self):\n"
            "        self._items = []\n"
            "    def add(self, v):\n"
            "        self._items.append(v)\n"
        )
        assert _lint(source, path="src/repro/service/metrics.py") == []

    def test_acquire_release_region_counts_as_locked(self):
        source = (
            "import threading\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}\n"
            "    def add(self, k, v):\n"
            "        self._lock.acquire()\n"
            "        try:\n"
            "            self._items[k] = v\n"
            "        finally:\n"
            "            self._lock.release()\n"
        )
        assert _lint(source, path="src/repro/service/metrics.py") == []

    def test_mutation_after_release_flagged(self):
        source = (
            "import threading\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}\n"
            "    def add(self, k, v):\n"
            "        self._lock.acquire()\n"
            "        self._lock.release()\n"
            "        self._items[k] = v\n"
        )
        findings = _lint(source, path="src/repro/service/metrics.py")
        assert _rules(findings) == ["lock-discipline"]

    def test_rlock_alias_attr_is_recognized(self):
        source = (
            "import threading\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._write_lock = threading.RLock()\n"
            "        self._items = {}\n"
            "    def good(self, k, v):\n"
            "        with self._write_lock:\n"
            "            self._items[k] = v\n"
            "    def bad(self, k, v):\n"
            "        self._items[k] = v\n"
        )
        findings = _lint(source, path="src/repro/service/metrics.py")
        assert _rules(findings) == ["lock-discipline"]
        assert findings[0].line == 10

    def test_make_lock_alias_attr_is_recognized(self):
        source = (
            "from repro.check.sanitizer import make_lock\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._store_lock = make_lock('Store._store_lock')\n"
            "        self._items = {}\n"
            "    def put(self, k, v):\n"
            "        with self._store_lock:\n"
            "            self._items[k] = v\n"
        )
        assert _lint(source, path="src/repro/service/metrics.py") == []

    def test_plain_attr_assignment_is_not_a_lock(self):
        source = (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._guard = object()\n"
            "        self._items = {}\n"
            "    def add(self, k, v):\n"
            "        with self._guard:\n"
            "            self._items[k] = v\n"
        )
        # _guard is not a lock factory: the class owns no lock at all,
        # so the rule does not engage
        assert _lint(source, path="src/repro/service/metrics.py") == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        source = "try:\n    x = 1\nexcept:\n    pass\n"
        findings = _lint(source, path="src/repro/service/admission.py")
        assert _rules(findings) == ["bare-except"]

    def test_typed_except_allowed(self):
        source = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert _lint(source, path="src/repro/service/admission.py") == []


class TestTupleAnnotation:
    def test_parenthesized_return_annotation_flagged(self):
        source = "def f() -> (int, str):\n    return 1, 'a'\n"
        findings = _lint(source, path="src/repro/smt/sat.py")
        assert _rules(findings) == ["tuple-annotation"]
        assert "Tuple[" in findings[0].message

    def test_typing_tuple_allowed(self):
        source = ("from typing import Tuple\n"
                  "def f() -> Tuple[int, str]:\n    return 1, 'a'\n")
        assert _lint(source, path="src/repro/smt/sat.py") == []


class TestSuppressionAndScoping:
    def test_inline_suppression_with_rule(self):
        source = "GUARD = 1.5  # repro: lint-ok[float-arith]\n"
        assert _lint(source) == []

    def test_blanket_suppression(self):
        source = "GUARD = 1.5  # repro: lint-ok\n"
        assert _lint(source) == []

    def test_suppression_for_other_rule_does_not_apply(self):
        source = "GUARD = 1.5  # repro: lint-ok[bare-except]\n"
        assert _rules(_lint(source)) == ["float-arith"]

    def test_rule_filter_restricts_output(self):
        source = "GUARD = 1.5\ntry:\n    pass\nexcept:\n    pass\n"
        findings = _lint(source, rules=["bare-except"])
        assert _rules(findings) == ["bare-except"]

    def test_unknown_rule_rejected(self):
        try:
            lint_source("x = 1\n", "src/repro/core/gcl.py",
                        rules=["no-such-rule"])
        except ValueError as exc:
            assert "no-such-rule" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_syntax_error_reported_as_parse_error(self):
        findings = _lint("def broken(:\n", path="src/repro/core/gcl.py")
        assert _rules(findings) == ["parse-error"]

    def test_all_rules_is_complete(self):
        assert set(ALL_RULES) == {
            "wall-clock", "float-arith", "lock-discipline",
            "bare-except", "tuple-annotation",
        }


def test_shipped_tree_is_clean():
    """The acceptance gate: ``repro check lint src --strict`` exits 0."""
    assert lint_paths(["src"]) == []
