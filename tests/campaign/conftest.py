"""Shared campaign fixtures: tiny matrices that run in milliseconds."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, ClockErrorSpec


@pytest.fixture
def tiny_spec() -> CampaignSpec:
    """One clean cell and one faulty cell, two seeds, 50 simulated ms."""
    return CampaignSpec(
        name="tiny",
        scenarios=("ring",),
        loss_rates=(0.0, 0.2),
        clock_errors=(ClockErrorSpec(),),
        loads=(0.25,),
        frer=(False,),
        seeds=2,
        duration_ms=50,
    )


@pytest.fixture
def frer_spec() -> CampaignSpec:
    """A single lossy FRER-on cell."""
    return CampaignSpec(
        name="tiny-frer",
        scenarios=("ring",),
        loss_rates=(0.3,),
        clock_errors=(ClockErrorSpec(),),
        loads=(0.25,),
        frer=(True,),
        seeds=1,
        duration_ms=50,
    )
