"""Resumable, deterministic campaign execution (inline and pooled)."""

import json

import pytest

from repro.campaign import (
    CampaignError,
    campaign_status,
    load_results,
    load_spec,
    run_campaign,
    shard_path,
)
from repro.campaign.runner import RUNS_DIRNAME, SPEC_FILENAME


def _shard_bytes(out_dir, spec):
    return {
        run.run_id: shard_path(out_dir, run.run_id).read_bytes()
        for run in spec.runs()
    }


class TestExecution:
    def test_inline_run_completes_every_shard(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        progress = run_campaign(tiny_spec, out, workers=1)
        assert (progress.total, progress.executed, progress.skipped) == (4, 4, 0)
        assert not progress.failures
        for run in tiny_spec.runs():
            assert shard_path(out, run.run_id).exists()
        assert (out / SPEC_FILENAME).exists()

    def test_progress_callback_sees_every_run(self, tiny_spec, tmp_path):
        seen = []
        run_campaign(tiny_spec, tmp_path / "camp", workers=1,
                     progress=lambda run_id, done, total: seen.append(
                         (run_id, done, total)))
        assert len(seen) == 4
        assert [done for _, done, _ in seen] == [1, 2, 3, 4]
        assert all(total == 4 for _, _, total in seen)

    def test_spec_is_pinned_to_directory(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        assert load_spec(out) == tiny_spec

    def test_foreign_spec_rejected(self, tiny_spec, frer_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec.with_seeds(1), out, workers=1)
        with pytest.raises(CampaignError, match="different campaign spec"):
            run_campaign(frer_spec, out, workers=1)

    def test_load_spec_requires_directory(self, tmp_path):
        with pytest.raises(CampaignError, match="run first"):
            load_spec(tmp_path / "nope")


class TestResume:
    def test_second_run_skips_everything(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        resumed = run_campaign(tiny_spec, out, workers=1)
        assert (resumed.executed, resumed.skipped) == (0, 4)

    def test_missing_shard_is_recomputed_identically(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        before = _shard_bytes(out, tiny_spec)
        victim = next(tiny_spec.runs()).run_id
        shard_path(out, victim).unlink()
        resumed = run_campaign(tiny_spec, out, workers=1)
        assert (resumed.executed, resumed.skipped) == (1, 3)
        assert _shard_bytes(out, tiny_spec) == before

    def test_corrupt_shard_is_recomputed(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        victim = next(tiny_spec.runs()).run_id
        shard_path(out, victim).write_text("{half a sha")
        resumed = run_campaign(tiny_spec, out, workers=1)
        assert resumed.executed == 1

    def test_wrong_run_id_in_shard_is_recomputed(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        victim = next(tiny_spec.runs()).run_id
        shard_path(out, victim).write_text(json.dumps({"run_id": "other"}))
        resumed = run_campaign(tiny_spec, out, workers=1)
        assert resumed.executed == 1


class TestDeterminismAcrossWorkers:
    def test_pool_and_inline_shards_are_byte_identical(self, tiny_spec,
                                                       tmp_path):
        """The satellite guarantee: worker count never changes results."""
        inline = tmp_path / "inline"
        pooled = tmp_path / "pooled"
        run_campaign(tiny_spec, inline, workers=1)
        progress = run_campaign(tiny_spec, pooled, workers=2)
        assert progress.executed == 4 and not progress.failures
        assert _shard_bytes(inline, tiny_spec) == _shard_bytes(pooled, tiny_spec)

    def test_rerun_from_scratch_is_byte_identical(self, tiny_spec, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        run_campaign(tiny_spec, first, workers=1)
        run_campaign(tiny_spec, second, workers=1)
        assert _shard_bytes(first, tiny_spec) == _shard_bytes(second, tiny_spec)


class TestStatusAndLoading:
    def test_status_counts_per_cell(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        shard_path(out, list(tiny_spec.runs())[-1].run_id).unlink()
        status = campaign_status(out)
        assert status["campaign"] == "tiny"
        assert status["total_runs"] == 4
        assert status["completed_runs"] == 3
        per_cell = {cell["cell_id"]: cell["completed"]
                    for cell in status["cells"]}
        assert sorted(per_cell.values()) == [1, 2]
        assert all(cell["seeds"] == 2 for cell in status["cells"])

    def test_load_results_sorted_and_skips_garbage(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec, out, workers=1)
        (out / RUNS_DIRNAME / "zzz-broken.json").write_text("not json")
        results = load_results(out)
        assert len(results) == 4
        assert [r.run_id for r in results] == sorted(r.run_id for r in results)

    def test_load_results_of_empty_directory(self, tmp_path):
        assert load_results(tmp_path / "nothing") == []
