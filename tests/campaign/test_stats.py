"""Wilson intervals and nearest-rank percentiles."""

import pytest

from repro.campaign import latency_summary, nearest_rank, wilson_interval


class TestWilsonInterval:
    def test_zero_trials_is_vacuous(self):
        interval = wilson_interval(0, 0)
        assert (interval.estimate, interval.low, interval.high) == (0.0, 0.0, 1.0)

    def test_zero_misses_keeps_open_upper_bound(self):
        """0/20 must not collapse to [0, 0] — the whole point of Wilson
        over the normal approximation for robustness campaigns."""
        interval = wilson_interval(0, 20)
        assert interval.estimate == 0.0
        assert interval.low == pytest.approx(0.0, abs=1e-12)
        # closed form at p=0: z^2 / (n + z^2)
        z2 = 1.959963984540054**2
        assert interval.high == pytest.approx(z2 / (20 + z2))

    def test_all_misses_mirror(self):
        assert wilson_interval(20, 20).low == pytest.approx(
            1.0 - wilson_interval(0, 20).high
        )

    def test_estimate_is_sample_proportion(self):
        assert wilson_interval(3, 12).estimate == pytest.approx(0.25)

    def test_interval_brackets_estimate(self):
        for successes in range(0, 11):
            interval = wilson_interval(successes, 10)
            assert interval.low <= interval.estimate <= interval.high
            assert 0.0 <= interval.low and interval.high <= 1.0

    def test_more_trials_tighten(self):
        wide = wilson_interval(1, 10)
        tight = wilson_interval(10, 100)
        assert tight.high - tight.low < wide.high - wide.low

    @pytest.mark.parametrize("successes,trials", [(-1, 5), (5, -1), (6, 5)])
    def test_invalid_counts_rejected(self, successes, trials):
        with pytest.raises(ValueError, match="successes <= trials"):
            wilson_interval(successes, trials)


class TestNearestRank:
    def test_median_of_even_sample(self):
        assert nearest_rank([10, 20, 30, 40], 0.50) == 20

    def test_p100_is_max(self):
        assert nearest_rank([10, 20, 30, 40], 1.0) == 40

    def test_p99_of_100_samples(self):
        values = list(range(100))
        assert nearest_rank(values, 0.99) == 98
        assert nearest_rank(values, 0.999) == 99

    def test_single_sample_serves_every_fraction(self):
        assert nearest_rank([7], 0.001) == 7
        assert nearest_rank([7], 1.0) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            nearest_rank([], 0.5)

    def test_fraction_domain(self):
        with pytest.raises(ValueError, match="fraction"):
            nearest_rank([1], 0.0)
        with pytest.raises(ValueError, match="fraction"):
            nearest_rank([1], 1.1)


class TestLatencySummary:
    def test_empty_sample_yields_no_keys(self):
        assert latency_summary([]) == {}

    def test_quartet(self):
        values = list(range(1, 1001))
        summary = latency_summary(values)
        assert summary == {
            "p50_ns": 500, "p99_ns": 990, "p999_ns": 999, "max_ns": 1000,
        }
