"""``repro campaign`` CLI and report rendering (in-process, via main())."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    aggregate_results,
    load_results,
    render_markdown,
    run_campaign,
)
from repro.cli import main


@pytest.fixture
def spec_file(tiny_spec, tmp_path):
    spec = tiny_spec.with_seeds(1)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    return path, spec


class TestRunCommand:
    def test_run_then_resume(self, spec_file, tmp_path, capsys):
        path, spec = spec_file
        out = tmp_path / "camp"
        assert main(["campaign", "run", "--spec", str(path),
                     "--out", str(out), "--workers", "1", "--quiet"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary == {"campaign": "tiny", "total_runs": 2,
                           "executed": 2, "skipped": 0}
        assert main(["campaign", "run", "--spec", str(path),
                     "--out", str(out), "--workers", "1", "--quiet"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert (resumed["executed"], resumed["skipped"]) == (0, 2)

    def test_seeds_override(self, spec_file, tmp_path, capsys):
        path, _ = spec_file
        out = tmp_path / "camp"
        assert main(["campaign", "run", "--spec", str(path), "--out",
                     str(out), "--workers", "1", "--seeds", "2",
                     "--quiet"]) == 0
        assert json.loads(capsys.readouterr().out)["total_runs"] == 4

    def test_progress_lines_on_stderr(self, spec_file, tmp_path, capsys):
        path, _ = spec_file
        assert main(["campaign", "run", "--spec", str(path),
                     "--out", str(tmp_path / "camp"), "--workers", "1"]) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err

    def test_missing_spec_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such spec file"):
            main(["campaign", "run", "--spec", str(tmp_path / "nope.json"),
                  "--out", str(tmp_path / "camp")])

    def test_invalid_spec_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "scenarios": ["mesh"]}))
        with pytest.raises(SystemExit, match="bad spec"):
            main(["campaign", "run", "--spec", str(bad),
                  "--out", str(tmp_path / "camp")])


class TestStatusCommand:
    def test_text_and_json(self, spec_file, tmp_path, capsys):
        path, spec = spec_file
        out = tmp_path / "camp"
        main(["campaign", "run", "--spec", str(path), "--out", str(out),
              "--workers", "1", "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "status", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "2/2 runs complete" in text
        assert main(["campaign", "status", "--out", str(out),
                     "--format", "json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed_runs"] == 2

    def test_unknown_directory_fails(self, tmp_path, capsys):
        assert main(["campaign", "status", "--out",
                     str(tmp_path / "nope")]) == 1
        assert "run first" in capsys.readouterr().err


class TestReportCommand:
    def test_markdown_and_json_outputs(self, spec_file, tmp_path, capsys):
        path, spec = spec_file
        out = tmp_path / "camp"
        main(["campaign", "run", "--spec", str(path), "--out", str(out),
              "--workers", "1", "--quiet"])
        capsys.readouterr()
        md_file = tmp_path / "report.md"
        json_file = tmp_path / "report.json"
        assert main(["campaign", "report", "--out", str(out),
                     "--output", str(md_file),
                     "--json-out", str(json_file)]) == 0
        markdown = md_file.read_text()
        assert "# Robustness campaign `tiny`" in markdown
        assert "| scenario |" in markdown
        report = json.loads(json_file.read_text())
        assert report["campaign"] == "tiny"
        assert report["aggregated_runs"] == 2
        # the clean cell of the matrix has zero miss probability
        clean = report["cells"][0]
        assert clean["axes"]["loss_rate"] == 0.0
        for stream in clean["streams"].values():
            assert stream["miss_probability"] == 0.0

    def test_report_to_stdout(self, spec_file, tmp_path, capsys):
        path, _ = spec_file
        out = tmp_path / "camp"
        main(["campaign", "run", "--spec", str(path), "--out", str(out),
              "--workers", "1", "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "report", "--out", str(out),
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["campaign"] == "tiny"

    def test_report_without_campaign_fails(self, tmp_path, capsys):
        assert main(["campaign", "report", "--out",
                     str(tmp_path / "nope")]) == 1


class TestExampleSpecCommand:
    def test_output_is_a_valid_spec(self, capsys):
        assert main(["campaign", "example-spec", "--seeds", "3"]) == 0
        data = json.loads(capsys.readouterr().out)
        spec = CampaignSpec.from_dict(data)
        assert spec.seeds == 3
        assert spec.name == "loss-x-drift"


class TestMarkdownRendering:
    def test_fault_totals_table(self, tiny_spec, tmp_path):
        out = tmp_path / "camp"
        run_campaign(tiny_spec.with_seeds(1), out, workers=1)
        report = aggregate_results(tiny_spec.with_seeds(1), load_results(out))
        markdown = render_markdown(report)
        # one row per cell in both tables
        for cell in report.cells:
            assert markdown.count(cell.cell_id) >= 1
        assert "frames_lost" in markdown
        assert "frer_duplicates_eliminated" in markdown
