"""execute_run: one cell x seed through the full sim pipeline."""

from repro.campaign import RunResult, execute_run
from repro.campaign.spec import RunSpec


def _run(spec, cell_index=0, seed_index=0):
    return execute_run(
        spec, RunSpec(cell=spec.cells()[cell_index], seed_index=seed_index)
    )


class TestCleanCell:
    def test_no_faults_no_misses(self, tiny_spec):
        result = _run(tiny_spec, cell_index=0)
        assert result.frames_lost == 0
        assert result.sync_error_max_ns == 0
        assert result.duplicates_eliminated == 0
        assert result.drops_by_link == {}
        assert result.streams  # the workload carries TCT + ECT streams
        for name, outcome in result.streams.items():
            assert outcome.deadline_misses == 0, name
            assert outcome.delivered == outcome.injected
            assert len(outcome.latencies_ns) == outcome.delivered
            assert outcome.latencies_ns == sorted(outcome.latencies_ns)
            assert all(0 < lat <= outcome.deadline_ns
                       for lat in outcome.latencies_ns)

    def test_per_hop_trace_is_complete(self, tiny_spec):
        result = _run(tiny_spec, cell_index=0)
        assert result.trace_overflow == 0
        assert result.frame_events.get("frame.deliver", 0) > 0
        assert result.frame_events.get("frame.transmit", 0) >= \
            result.frame_events["frame.deliver"]
        assert "frame.drop" not in result.frame_events


class TestFaultyCell:
    def test_loss_surfaces_in_drops_and_misses(self, tiny_spec):
        result = _run(tiny_spec, cell_index=1)  # loss 0.2
        assert result.frames_lost > 0
        assert result.frame_events.get("frame.drop", 0) == result.frames_lost
        assert sum(result.drops_by_link.values()) == result.frames_lost
        # loss is confined to the switch backbone
        for link in result.drops_by_link:
            src, _, dst = link.partition("->")
            assert src.startswith("SW") and dst.startswith("SW"), link

    def test_frer_eliminates_duplicates(self, frer_spec):
        result = _run(frer_spec)
        assert result.duplicates_eliminated > 0

    def test_frer_beats_plain_at_equal_loss(self, frer_spec):
        """The acceptance direction: replication can only help the ECT
        stream, and at 30 % loss it measurably does."""
        plain_spec = frer_spec.from_dict(
            {**frer_spec.to_dict(), "name": "tiny-plain", "frer": [False]}
        )
        misses = {}
        for label, spec in (("frer", frer_spec), ("plain", plain_spec)):
            lost = 0
            injected = 0
            for seed_index in range(4):
                outcome = _run(spec, seed_index=seed_index).streams["alarm"]
                lost += outcome.deadline_misses
                injected += outcome.injected
            assert injected > 0
            misses[label] = lost / injected
        assert misses["frer"] < misses["plain"]


class TestDeterminism:
    def test_result_is_pure_function_of_identity(self, tiny_spec):
        first = _run(tiny_spec, cell_index=1, seed_index=1)
        second = _run(tiny_spec, cell_index=1, seed_index=1)
        assert first.to_dict() == second.to_dict()

    def test_seeds_differ(self, tiny_spec):
        a = _run(tiny_spec, cell_index=1, seed_index=0)
        b = _run(tiny_spec, cell_index=1, seed_index=1)
        assert a.sim_seed != b.sim_seed

    def test_round_trip(self, tiny_spec):
        result = _run(tiny_spec, cell_index=1)
        assert RunResult.from_dict(result.to_dict()).to_dict() == result.to_dict()
