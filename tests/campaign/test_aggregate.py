"""Aggregation of run shards into the per-cell scenario matrix."""

import pytest

from repro.campaign import (
    CampaignSpec,
    RunResult,
    StreamOutcome,
    aggregate_results,
)


@pytest.fixture
def one_cell_spec():
    return CampaignSpec(name="agg", loss_rates=(0.1,), seeds=2,
                        duration_ms=50)


def _result(spec, seed_index, misses, latencies, cell_id=None):
    cell = spec.cells()[0]
    return RunResult(
        run_id=f"{cell.cell_id}-seed{seed_index:04d}",
        cell_id=cell_id or cell.cell_id,
        seed_index=seed_index,
        sim_seed=seed_index,
        axes=cell.axes(),
        duration_ns=50_000_000,
        streams={
            "s": StreamOutcome(
                deadline_ns=1_000,
                injected=10,
                delivered=10 - misses,
                deadline_misses=misses,
                latencies_ns=sorted(latencies),
            )
        },
        frames_lost=misses,
        duplicates_eliminated=1,
        sync_error_max_ns=100 * (seed_index + 1),
        drops_by_link={"SW1->SW2": misses},
        frame_events={"frame.deliver": 10 - misses},
        trace_overflow=0,
        num_events=50,
    )


class TestAggregation:
    def test_pools_across_seeds(self, one_cell_spec):
        results = [
            _result(one_cell_spec, 0, misses=2, latencies=[100, 200, 300]),
            _result(one_cell_spec, 1, misses=1, latencies=[150, 250]),
        ]
        report = aggregate_results(one_cell_spec, results)
        assert len(report.cells) == 1
        cell = report.cells[0]
        assert cell.runs == 2
        stream = cell.streams["s"]
        assert stream.injected == 20
        assert stream.deadline_misses == 3
        assert stream.miss.estimate == pytest.approx(0.15)
        assert stream.miss.low < 0.15 < stream.miss.high
        # pooled, re-sorted latencies
        assert stream.latencies_ns == [100, 150, 200, 250, 300]
        assert cell.frames_lost == 3
        assert cell.duplicates_eliminated == 2
        assert cell.sync_error_max_ns == 200  # max, not sum
        assert cell.drops_by_link == {"SW1->SW2": 3}

    def test_stale_shard_from_unknown_cell_ignored(self, one_cell_spec):
        results = [
            _result(one_cell_spec, 0, misses=0, latencies=[100]),
            _result(one_cell_spec, 1, misses=9, latencies=[1],
                    cell_id="old-spec-cell"),
        ]
        report = aggregate_results(one_cell_spec, results)
        assert report.cells[0].runs == 1
        assert report.cells[0].streams["s"].deadline_misses == 0
        assert report.to_dict()["aggregated_runs"] == 1

    def test_empty_results_still_enumerate_cells(self, one_cell_spec):
        report = aggregate_results(one_cell_spec, [])
        assert len(report.cells) == 1
        assert report.cells[0].runs == 0
        assert report.cells[0].worst_miss().trials == 0

    def test_worst_miss_picks_dominant_stream(self, one_cell_spec):
        result = _result(one_cell_spec, 0, misses=5, latencies=[100])
        result.streams["clean"] = StreamOutcome(
            deadline_ns=1_000, injected=10, delivered=10,
            deadline_misses=0, latencies_ns=[10] * 10,
        )
        report = aggregate_results(one_cell_spec, [result])
        assert report.cells[0].worst_miss().estimate == pytest.approx(0.5)

    def test_cell_lookup(self, one_cell_spec):
        report = aggregate_results(one_cell_spec, [])
        cell_id = one_cell_spec.cells()[0].cell_id
        assert report.cell(cell_id).cell_id == cell_id
        with pytest.raises(KeyError):
            report.cell("missing")

    def test_to_dict_schema(self, one_cell_spec):
        result = _result(one_cell_spec, 0, misses=1, latencies=[100, 200])
        data = aggregate_results(one_cell_spec, [result]).to_dict()
        assert data["campaign"] == "agg"
        assert data["total_runs"] == 2
        assert data["aggregated_runs"] == 1
        cell = data["cells"][0]
        stream = cell["streams"]["s"]
        for key in ("miss_probability", "miss_ci_low", "miss_ci_high",
                    "p50_ns", "p99_ns", "p999_ns", "max_ns"):
            assert key in stream, key
        assert cell["axes"]["loss_rate"] == 0.1
