"""CampaignSpec: matrix enumeration, validation, seed derivation."""

import pytest

from repro.campaign import (
    CampaignSpec,
    CellSpec,
    ClockErrorSpec,
    SpecError,
    derive_seed,
    example_spec,
)
from repro.campaign.spec import RunSpec


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        a = derive_seed(1, "cell", 0, "sim")
        b = derive_seed(1, "cell", 0, "sim")
        assert a == b

    def test_axes_of_identity_are_independent(self):
        base = derive_seed(1, "cell", 0, "sim")
        assert derive_seed(2, "cell", 0, "sim") != base
        assert derive_seed(1, "other", 0, "sim") != base
        assert derive_seed(1, "cell", 1, "sim") != base
        assert derive_seed(1, "cell", 0, "clock") != base

    def test_pinned_value(self):
        """SHA-256 derivation is stable across processes and versions;
        a pinned value catches accidental re-derivation changes (which
        would silently invalidate every resumable campaign directory)."""
        assert derive_seed(1, "cell", 0, "sim") == 839392218682205090

    def test_fits_in_63_bits(self):
        for i in range(32):
            assert 0 <= derive_seed(i, "c", i, "p") < 2**63


class TestClockErrorSpec:
    def test_defaults_are_perfect(self):
        assert ClockErrorSpec().is_perfect

    def test_any_error_axis_disables_perfect(self):
        assert not ClockErrorSpec(drift_ppb=1).is_perfect
        assert not ClockErrorSpec(offset_ns=1).is_perfect
        assert not ClockErrorSpec(sync_residual_ns=1).is_perfect

    def test_label(self):
        clock = ClockErrorSpec(drift_ppb=500, offset_ns=1000, sync_residual_ns=10)
        assert clock.label() == "drift500-off1000-res10"

    def test_round_trip(self):
        clock = ClockErrorSpec(drift_ppb=50, sync_residual_ns=10)
        assert ClockErrorSpec.from_dict(clock.to_dict()) == clock

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown clock-error field"):
            ClockErrorSpec.from_dict({"drift_ppm": 1})

    @pytest.mark.parametrize("kwargs", [
        {"drift_ppb": -1},
        {"offset_ns": -1},
        {"sync_residual_ns": -1},
        {"sync_interval_ns": 0},
    ])
    def test_negative_knobs_rejected(self, kwargs):
        with pytest.raises(SpecError):
            ClockErrorSpec(**kwargs)


class TestCellIdentity:
    def test_cell_id_is_readable_and_path_safe(self):
        cell = CellSpec(scenario="ring", loss_rate=1e-4,
                        clock=ClockErrorSpec(drift_ppb=50), load=0.25,
                        frer=True)
        assert cell.cell_id == "ring-loss1e-04-drift50-off0-res0-load0.25-freron"
        assert "/" not in cell.cell_id and " " not in cell.cell_id

    def test_run_id_appends_seed(self):
        cell = CellSpec(scenario="ring", loss_rate=0.0,
                        clock=ClockErrorSpec(), load=0.25, frer=False)
        run = RunSpec(cell=cell, seed_index=7)
        assert run.run_id.endswith("-seed0007")

    def test_axes_carry_every_coordinate(self):
        cell = CellSpec(scenario="ring", loss_rate=0.5,
                        clock=ClockErrorSpec(drift_ppb=9), load=0.3, frer=True)
        axes = cell.axes()
        assert axes["loss_rate"] == 0.5
        assert axes["drift_ppb"] == 9
        assert axes["frer"] is True


class TestCampaignSpec:
    def test_matrix_is_full_cross_product(self, tiny_spec):
        assert len(tiny_spec.cells()) == 2
        assert tiny_spec.total_runs() == 4
        assert len(list(tiny_spec.runs())) == 4

    def test_cells_keep_axis_order(self):
        spec = CampaignSpec(name="m", loss_rates=(0.0, 0.1),
                            frer=(False, True), seeds=1)
        ids = [cell.cell_id for cell in spec.cells()]
        assert ids == sorted(set(ids), key=ids.index)  # no duplicates
        # loss is the outer axis, frer the inner
        assert ids[0].endswith("freroff") and ids[1].endswith("freron")
        assert "loss0-" in ids[0] and "loss0.1" in ids[2]

    def test_seed_derivation_separates_sim_and_clock(self, tiny_spec):
        run = next(tiny_spec.runs())
        assert tiny_spec.sim_seed(run) != tiny_spec.clock_seed(run)

    def test_round_trip(self, tiny_spec):
        assert CampaignSpec.from_dict(tiny_spec.to_dict()) == tiny_spec

    def test_with_seeds(self, tiny_spec):
        assert tiny_spec.with_seeds(9).seeds == 9
        assert tiny_spec.seeds == 2  # original untouched

    @pytest.mark.parametrize("kwargs,message", [
        ({"scenarios": ("mesh",)}, "unknown scenario"),
        ({"scenarios": ("testbed",), "frer": (True,)}, "single-homed"),
        ({"loss_rates": (1.5,)}, r"outside \[0, 1\]"),
        ({"loads": (0.0,)}, r"outside \(0, 1\)"),
        ({"loads": ()}, "at least one value"),
        ({"seeds": 0}, "seeds must be >= 1"),
        ({"duration_ms": 0}, "duration_ms"),
        ({"name": "has space"}, "path-safe"),
        ({"name": ""}, "path-safe"),
    ])
    def test_validation(self, kwargs, message):
        base = {"name": "ok"}
        base.update(kwargs)
        with pytest.raises(SpecError, match=message):
            CampaignSpec(**base)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown campaign field"):
            CampaignSpec.from_dict({"name": "x", "velocity": 3})

    def test_from_dict_requires_name(self):
        with pytest.raises(SpecError, match="needs a name"):
            CampaignSpec.from_dict({"seeds": 3})


class TestExampleSpec:
    def test_matches_acceptance_matrix(self):
        spec = example_spec()
        assert spec.loss_rates == (0.0, 1e-4, 1e-3)
        assert tuple(c.drift_ppb for c in spec.clock_errors) == (0, 50, 500)
        assert spec.frer == (False, True)
        assert spec.seeds >= 20

    def test_round_trips_through_json_dict(self):
        spec = example_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
