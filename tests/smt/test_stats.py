"""SolverStats: the typed search-statistics snapshot on solve results."""

from __future__ import annotations

import dataclasses

from repro.smt import DlSmtSolver, SolverStats, diff_ge, diff_le, var_ge, var_le
from repro.smt.sat import SatSolver


class TestSolverStats:
    def test_default_snapshot_is_zero(self):
        stats = SolverStats()
        assert stats.conflicts == 0
        assert stats.decisions == 0
        assert stats.propagations == 0
        assert stats.to_dict() == {
            "conflicts": 0, "decisions": 0, "propagations": 0,
            "restarts": 0, "theory_checks": 0, "theory_conflicts": 0,
            "learned_clauses": 0,
        }

    def test_snapshot_is_frozen(self):
        stats = SolverStats()
        try:
            stats.conflicts = 5
        except dataclasses.FrozenInstanceError:
            pass
        else:
            raise AssertionError("SolverStats must be immutable")

    def test_attached_to_sat_result(self):
        s = DlSmtSolver()
        s.require(var_ge("a", 0))
        s.require(diff_le("a", "b", -5))
        s.require(var_le("b", 20))
        result = s.check()
        assert result.sat
        stats = result.solver_stats
        assert isinstance(stats, SolverStats)
        assert stats.theory_checks > 0
        # the legacy dict view carries the same numbers
        for key, value in stats.to_dict().items():
            assert result.stats[key] == value

    def test_unsat_counts_conflicts(self):
        s = DlSmtSolver()
        # contradictory chain forces at least one theory conflict
        s.require(diff_le("a", "b", -1))
        s.require(diff_le("b", "c", -1))
        s.require(diff_ge("a", "c", 0))
        result = s.check()
        assert not result.sat
        assert result.solver_stats.theory_conflicts >= 1

    def test_disjunctions_drive_decisions_and_learning(self):
        s = DlSmtSolver()
        # a small packing problem: enough branching to force decisions
        names = ["w", "x", "y", "z"]
        for name in names:
            s.require(var_ge(name, 0))
            s.require(var_le(name, 30))
        for a, b in [(a, b) for i, a in enumerate(names)
                     for b in names[i + 1:]]:
            s.add_clause([diff_le(a, b, -10), diff_ge(a, b, 10)])
        result = s.check()
        assert result.sat
        stats = result.solver_stats
        assert stats.decisions > 0
        assert stats.propagations > 0
        if stats.conflicts:
            assert stats.learned_clauses > 0

    def test_sat_solver_stats_method_matches_counters(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve()
        stats = solver.stats()
        assert stats.propagations == solver.num_propagations
        assert stats.conflicts == solver.num_conflicts
        assert stats.decisions == solver.num_decisions
        assert stats.restarts == solver.num_restarts
