"""CDCL SAT core tests (no theory attached)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SatSolver, _luby


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(1, 16)] == expected

    def test_powers(self):
        assert _luby(2**6 - 1) == 2**5


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = SatSolver()
        solver.new_var()
        assert solver.solve()

    def test_unit_clause(self):
        solver = SatSolver()
        v = solver.new_var()
        solver.add_clause([v])
        assert solver.solve()
        assert solver.value(v) is True

    def test_negated_unit(self):
        solver = SatSolver()
        v = solver.new_var()
        solver.add_clause([-v])
        assert solver.solve()
        assert solver.value(v) is False

    def test_contradictory_units(self):
        solver = SatSolver()
        v = solver.new_var()
        assert solver.add_clause([v])
        assert not solver.add_clause([-v])
        assert not solver.solve()

    def test_tautology_ignored(self):
        solver = SatSolver()
        v = solver.new_var()
        solver.add_clause([v, -v])
        assert solver.solve()

    def test_duplicate_literals_collapse(self):
        solver = SatSolver()
        v = solver.new_var()
        solver.add_clause([v, v, v])
        assert solver.solve()
        assert solver.value(v) is True

    def test_unallocated_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([1])

    def test_value_before_solve_rejected(self):
        solver = SatSolver()
        v = solver.new_var()
        with pytest.raises(RuntimeError):
            solver.value(v)


class TestPropagationChains:
    def test_implication_chain(self):
        solver = SatSolver()
        vs = [solver.new_var() for _ in range(10)]
        solver.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            solver.add_clause([-a, b])  # a -> b
        assert solver.solve()
        assert all(solver.value(v) for v in vs)

    def test_chain_with_dead_end(self):
        solver = SatSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a])
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        solver.add_clause([-c])
        assert not solver.solve()


class TestClassicInstances:
    def test_pigeonhole_3_into_2(self):
        """PHP(3,2): 3 pigeons, 2 holes — UNSAT."""
        solver = SatSolver()
        var = {}
        for p in range(3):
            for h in range(2):
                var[(p, h)] = solver.new_var()
        for p in range(3):
            solver.add_clause([var[(p, h)] for h in range(2)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert not solver.solve()

    def test_pigeonhole_4_into_4_sat(self):
        solver = SatSolver()
        var = {}
        for p in range(4):
            for h in range(4):
                var[(p, h)] = solver.new_var()
        for p in range(4):
            solver.add_clause([var[(p, h)] for h in range(4)])
        for h in range(4):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve()
        # extract assignment: every pigeon sits somewhere, no collision
        seats = {}
        for p in range(4):
            holes = [h for h in range(4) if solver.value(var[(p, h)])]
            assert holes
            seats[p] = holes[0]

    def test_xor_chain_parity_unsat(self):
        """x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable."""
        solver = SatSolver()
        x1, x2, x3 = (solver.new_var() for _ in range(3))

        def add_xor_true(a, b):
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])

        add_xor_true(x1, x2)
        add_xor_true(x2, x3)
        add_xor_true(x1, x3)
        assert not solver.solve()


def _brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        def val(lit):
            v = bits[abs(lit) - 1]
            return v if lit > 0 else not v
        if all(any(val(l) for l in clause) for clause in clauses):
            return True
    return False


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_random_3sat_matches_brute_force(data):
    num_vars = data.draw(st.integers(2, 6))
    num_clauses = data.draw(st.integers(1, 20))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, 3))
        clause = [
            data.draw(st.integers(1, num_vars)) * data.draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    result = ok and solver.solve()
    assert result == _brute_force(num_vars, clauses)
    if result:
        for clause in clauses:
            assert any(
                solver.value(abs(l)) == (l > 0) for l in clause
            ), f"clause {clause} not satisfied"


def test_larger_random_instances_agree_with_brute_force():
    rng = random.Random(11)
    for _ in range(60):
        num_vars = rng.randint(4, 9)
        clauses = []
        for _ in range(rng.randint(5, 35)):
            width = rng.randint(2, 3)
            clauses.append([
                rng.randint(1, num_vars) * rng.choice([1, -1]) for _ in range(width)
            ])
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        assert (ok and solver.solve()) == _brute_force(num_vars, clauses)
