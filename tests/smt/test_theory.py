"""Incremental difference-logic theory solver tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.terms import ZERO, Atom, diff_le, var_ge, var_le
from repro.smt.theory import DifferenceLogic


class TestBasics:
    def test_consistent_chain(self):
        dl = DifferenceLogic()
        assert dl.assert_atom(diff_le("a", "b", -1), "t1") is None  # a < b
        assert dl.assert_atom(diff_le("b", "c", -1), "t2") is None  # b < c
        assert dl.assert_atom(diff_le("a", "c", 10), "t3") is None
        model = dl.model()
        assert model["a"] < model["b"] < model["c"]

    def test_negative_cycle_detected(self):
        dl = DifferenceLogic()
        assert dl.assert_atom(diff_le("a", "b", -1), "t1") is None
        conflict = dl.assert_atom(diff_le("b", "a", -1), "t2")
        assert conflict is not None
        assert set(conflict) == {"t1", "t2"}

    def test_longer_cycle_conflict_tokens(self):
        dl = DifferenceLogic()
        dl.assert_atom(diff_le("a", "b", -2), 1)
        dl.assert_atom(diff_le("b", "c", -2), 2)
        conflict = dl.assert_atom(diff_le("c", "a", 3), 3)
        assert conflict is not None
        assert set(conflict) == {1, 2, 3}

    def test_zero_weight_cycle_is_fine(self):
        dl = DifferenceLogic()
        assert dl.assert_atom(diff_le("a", "b", 0), 1) is None
        assert dl.assert_atom(diff_le("b", "a", 0), 2) is None
        model = dl.model()
        assert model["a"] == model["b"]

    def test_bounds_through_zero_var(self):
        dl = DifferenceLogic()
        assert dl.assert_atom(var_ge("x", 10), 1) is None
        assert dl.assert_atom(var_le("x", 20), 2) is None
        assert 10 <= dl.model()["x"] <= 20

    def test_contradictory_bounds(self):
        dl = DifferenceLogic()
        assert dl.assert_atom(var_ge("x", 10), 1) is None
        conflict = dl.assert_atom(var_le("x", 9), 2)
        assert conflict is not None
        assert set(conflict) == {1, 2}


class TestBacktracking:
    def test_pop_restores_consistency(self):
        dl = DifferenceLogic()
        dl.assert_atom(diff_le("a", "b", -1), 1)
        depth = dl.num_asserted
        assert dl.assert_atom(diff_le("b", "c", -1), 2) is None
        dl.backtrack_to(depth)
        # now b -> a is fine again through c not being constrained
        assert dl.assert_atom(diff_le("c", "b", -100), 3) is None

    def test_conflicting_edge_not_recorded(self):
        dl = DifferenceLogic()
        dl.assert_atom(var_ge("x", 10), 1)
        depth = dl.num_asserted
        assert dl.assert_atom(var_le("x", 0), 2) is not None
        assert dl.num_asserted == depth  # rejected edge left no trace
        assert dl.assert_atom(var_le("x", 15), 3) is None

    def test_backtrack_then_reassert(self):
        dl = DifferenceLogic()
        base = dl.num_asserted
        dl.assert_atom(diff_le("a", "b", -5), 1)
        dl.backtrack_to(base)
        conflict = dl.assert_atom(diff_le("b", "a", -5), 2)
        assert conflict is None  # the popped constraint no longer conflicts

    def test_bad_depth_rejected(self):
        dl = DifferenceLogic()
        with pytest.raises(ValueError):
            dl.backtrack_to(5)
        with pytest.raises(ValueError):
            dl.backtrack_to(-1)


class TestModelSoundness:
    def test_model_satisfies_all_asserted(self):
        rng = random.Random(3)
        dl = DifferenceLogic()
        asserted = []
        names = [f"v{i}" for i in range(8)]
        for token in range(200):
            a, b = rng.sample(names, 2)
            atom = Atom(a, b, rng.randint(-4, 12))
            if dl.assert_atom(atom, token) is None:
                asserted.append(atom)
        model = dl.model()
        for atom in asserted:
            assert atom.holds(model), atom

    def test_check_full_agrees(self):
        dl = DifferenceLogic()
        dl.assert_atom(diff_le("a", "b", -1), 1)
        dl.assert_atom(diff_le("b", "c", -1), 2)
        assert dl.check_full()


def _bellman_ford_feasible(atoms):
    """Independent reference: negative-cycle check over x - y <= c edges."""
    names = sorted({n for a in atoms for n in (a.x, a.y)})
    dist = {n: 0 for n in names}
    for _ in range(len(names) + 1):
        changed = False
        for atom in atoms:
            candidate = dist[atom.y] + atom.c  # edge y -> x, weight c
            if candidate < dist[atom.x]:
                dist[atom.x] = candidate
                changed = True
        if not changed:
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(-4, 6)),
    min_size=1, max_size=25,
))
def test_incremental_matches_bellman_ford(constraints):
    """The incremental solver and batch Bellman-Ford must agree."""
    dl = DifferenceLogic()
    accepted = []
    for token, (i, j, c) in enumerate(constraints):
        if i == j:
            continue
        atom = Atom(f"v{i}", f"v{j}", c)
        conflict = dl.assert_atom(atom, token)
        if conflict is not None:
            # The incremental solver says accepted + atom is infeasible;
            # the reference check must concur, and the conflict subset
            # itself must be infeasible too.
            assert not _bellman_ford_feasible(accepted + [atom])
            token_map = {
                t: Atom(f"v{a}", f"v{b}", w)
                for t, (a, b, w) in enumerate(constraints)
                if a != b
            }
            conflict_atoms = [atom if t == token else token_map[t] for t in conflict]
            assert not _bellman_ford_feasible(conflict_atoms)
            return
        accepted.append(atom)
    assert _bellman_ford_feasible(accepted)
    model = dl.model()
    for atom in accepted:
        assert atom.holds(model)
