"""Deeper SAT-core behaviors: learning, restarts, phase saving, scale."""

import random

import pytest

from repro.smt.sat import SatSolver


def _pigeonhole(solver, pigeons, holes):
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = solver.new_var()
    for p in range(pigeons):
        solver.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return var


class TestLearning:
    def test_unsat_proof_uses_conflicts(self):
        solver = SatSolver()
        _pigeonhole(solver, 5, 4)
        assert not solver.solve()
        assert solver.num_conflicts > 0

    def test_sat_side_scales(self):
        solver = SatSolver()
        var = _pigeonhole(solver, 10, 10)
        assert solver.solve()
        # valid perfect matching extracted
        seats = {}
        for p in range(10):
            mine = [h for h in range(10) if solver.value(var[(p, h)])]
            assert mine, f"pigeon {p} unseated"
            seats.setdefault(mine[0], []).append(p)
        # at-most-one enforced per hole actually used
        for hole, users in seats.items():
            assert len(users) == 1

    def test_restart_counter_moves_on_hard_instances(self):
        solver = SatSolver()
        _pigeonhole(solver, 7, 6)
        assert not solver.solve()
        # PHP(7,6) needs thousands of conflicts -> at least one restart
        assert solver.num_restarts >= 1


class TestChainedImplications:
    def test_long_chain_unit_propagates_without_decisions(self):
        solver = SatSolver()
        vs = [solver.new_var() for _ in range(500)]
        solver.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            solver.add_clause([-a, b])
        assert solver.solve()
        assert all(solver.value(v) for v in vs)
        assert solver.num_decisions <= 1

    def test_diamond_implications(self):
        # a -> b, a -> c, (b & c) -> d, plus -d forces -a
        solver = SatSolver()
        a, b, c, d = (solver.new_var() for _ in range(4))
        solver.add_clause([-a, b])
        solver.add_clause([-a, c])
        solver.add_clause([-b, -c, d])
        solver.add_clause([-d])
        assert solver.solve()
        assert solver.value(a) is False


class TestLargeRandomSatisfiable:
    def test_under_constrained_random_3sat(self):
        """Clause/variable ratio 2.0: essentially always satisfiable, and
        the model must check out."""
        rng = random.Random(99)
        solver = SatSolver()
        num_vars = 300
        for _ in range(num_vars):
            solver.new_var()
        clauses = []
        for _ in range(2 * num_vars):
            clause = list({
                rng.randint(1, num_vars) * rng.choice([1, -1])
                for _ in range(3)
            })
            clauses.append(clause)
            solver.add_clause(clause)
        assert solver.solve()
        for clause in clauses:
            taut = any(-l in clause for l in clause)
            assert taut or any(
                solver.value(abs(l)) == (l > 0) for l in clause
            )


class TestGraphColoring:
    def _color(self, edges, nodes, colors):
        solver = SatSolver()
        var = {(n, c): solver.new_var() for n in range(nodes) for c in range(colors)}
        for n in range(nodes):
            solver.add_clause([var[(n, c)] for c in range(colors)])
        for (u, v) in edges:
            for c in range(colors):
                solver.add_clause([-var[(u, c)], -var[(v, c)]])
        return solver.solve(), solver, var

    def test_triangle_needs_three_colors(self):
        triangle = [(0, 1), (1, 2), (0, 2)]
        sat2, _, _ = self._color(triangle, 3, 2)
        assert not sat2
        sat3, solver, var = self._color(triangle, 3, 3)
        assert sat3
        coloring = {
            n: next(c for c in range(3) if solver.value(var[(n, c)]))
            for n in range(3)
        }
        for (u, v) in triangle:
            assert coloring[u] != coloring[v]

    def test_odd_cycle_not_two_colorable(self):
        cycle = [(i, (i + 1) % 5) for i in range(5)]
        sat, _, _ = self._color(cycle, 5, 2)
        assert not sat

    def test_even_cycle_two_colorable(self):
        cycle = [(i, (i + 1) % 6) for i in range(6)]
        sat, _, _ = self._color(cycle, 6, 2)
        assert sat
