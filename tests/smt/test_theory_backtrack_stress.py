"""Randomized push/backtrack stress for the incremental DL theory.

Interleaves assertions and backtracks, continuously cross-checking the
incremental solver against a from-scratch Bellman-Ford over the active
constraint set — the invariant DPLL(T) relies on during backjumping.
"""

import random

import pytest

from repro.smt.terms import Atom
from repro.smt.theory import DifferenceLogic


def _bf_feasible(atoms):
    names = sorted({n for a in atoms for n in (a.x, a.y)})
    dist = {n: 0 for n in names}
    for _ in range(len(names) + 1):
        changed = False
        for atom in atoms:
            candidate = dist[atom.y] + atom.c
            if candidate < dist[atom.x]:
                dist[atom.x] = candidate
                changed = True
        if not changed:
            return True
    return False


@pytest.mark.parametrize("seed", range(8))
def test_interleaved_assert_backtrack(seed):
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(6)]
    dl = DifferenceLogic()
    active = []  # mirrors the assertion stack

    for step in range(400):
        if active and rng.random() < 0.3:
            depth = rng.randint(0, len(active))
            dl.backtrack_to(depth)
            del active[depth:]
            continue
        a, b = rng.sample(names, 2)
        atom = Atom(a, b, rng.randint(-5, 8))
        conflict = dl.assert_atom(atom, token=step)
        if conflict is None:
            active.append(atom)
            assert _bf_feasible(active), f"accepted an infeasible set @step {step}"
        else:
            assert not _bf_feasible(active + [atom]), (
                f"rejected a feasible extension @step {step}"
            )
        if step % 25 == 0 and active:
            model = dl.model()
            for item in active:
                assert item.holds(model), (step, item, model)
            assert dl.check_full()

    # final state coherent
    assert dl.num_asserted == len(active)
    if active:
        model = dl.model()
        assert all(a.holds(model) for a in active)
