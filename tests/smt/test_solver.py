"""DPLL(T) end-to-end tests for the difference-logic SMT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import DlSmtSolver, diff_ge, diff_le, var_ge, var_le
from repro.smt.terms import Atom


class TestConjunctions:
    def test_simple_sat_model(self):
        s = DlSmtSolver()
        s.require(var_ge("a", 0))
        s.require(diff_le("a", "b", -5))
        s.require(var_le("b", 20))
        result = s.check()
        assert result.sat
        m = result.model
        assert m["a"] >= 0 and m["b"] - m["a"] >= 5 and m["b"] <= 20

    def test_simple_unsat(self):
        s = DlSmtSolver()
        s.require(var_ge("a", 10))
        s.require(var_le("a", 5))
        assert not s.check().sat

    def test_unsat_has_no_model(self):
        s = DlSmtSolver()
        s.require(var_ge("a", 10))
        s.require(var_le("a", 5))
        result = s.check()
        with pytest.raises(RuntimeError):
            _ = result.model

    def test_equalities_via_two_bounds(self):
        s = DlSmtSolver()
        s.require(diff_le("x", "y", 3))
        s.require(diff_ge("x", "y", 3))
        result = s.check()
        assert result.sat
        assert result.model["x"] - result.model["y"] == 3

    def test_transitivity_conflict(self):
        s = DlSmtSolver()
        s.require(diff_le("a", "b", -1))
        s.require(diff_le("b", "c", -1))
        s.require(diff_le("c", "a", 1))  # would need a < c <= a + 1 - impossible with a<b<c
        assert not s.check().sat


class TestDisjunctions:
    def test_forced_order(self):
        s = DlSmtSolver()
        s.require(var_ge("x", 0)); s.require(var_le("x", 15))
        s.require(var_ge("y", 0)); s.require(var_le("y", 15))
        s.add_clause([diff_ge("x", "y", 10), diff_ge("y", "x", 10)])
        result = s.check()
        assert result.sat
        assert abs(result.model["x"] - result.model["y"]) >= 10

    def test_disjunction_unsat_when_window_too_tight(self):
        s = DlSmtSolver()
        s.require(var_ge("x", 0)); s.require(var_le("x", 5))
        s.require(var_ge("y", 0)); s.require(var_le("y", 5))
        s.add_clause([diff_ge("x", "y", 10), diff_ge("y", "x", 10)])
        assert not s.check().sat

    def test_empty_clause_rejected(self):
        s = DlSmtSolver()
        with pytest.raises(ValueError):
            s.add_clause([])

    def test_three_way_clause(self):
        s = DlSmtSolver()
        s.require(var_ge("x", 0))
        s.require(var_le("x", 2))
        s.add_clause([var_ge("x", 10), var_le("x", -10), diff_le("x", "x2", 0)])
        s.require(var_le("x2", 100))
        result = s.check()
        assert result.sat
        assert result.model["x"] <= result.model["x2"]

    def test_packing_exact_fit(self):
        s = DlSmtSolver()
        names = [f"j{i}" for i in range(10)]
        for n in names:
            s.require(var_ge(n, 0))
            s.require(var_le(n, 45))
        for a, b in itertools.combinations(names, 2):
            s.add_clause([diff_ge(a, b, 5), diff_ge(b, a, 5)])
        result = s.check()
        assert result.sat
        values = sorted(result.model[n] for n in names)
        assert all(b - a >= 5 for a, b in zip(values, values[1:]))

    def test_packing_one_too_many(self):
        s = DlSmtSolver()
        names = [f"j{i}" for i in range(4)]
        for n in names:
            s.require(var_ge(n, 0))
            s.require(var_le(n, 9))  # horizon 14 fits only 3 jobs of 5
        for a, b in itertools.combinations(names, 2):
            s.add_clause([diff_ge(a, b, 5), diff_ge(b, a, 5)])
        assert not s.check().sat


class TestStats:
    def test_stats_populated(self):
        s = DlSmtSolver()
        s.require(var_ge("a", 0))
        s.add_clause([var_le("a", 5), var_ge("a", 10)])
        result = s.check()
        assert result.sat
        assert result.stats["clauses"] == 2
        assert result.stats["atoms"] >= 2

    def test_bool_protocol(self):
        s = DlSmtSolver()
        s.require(var_ge("a", 0))
        assert s.check()


def _brute_force_idl(variables, hard, clauses, lo=0, hi=6):
    for values in itertools.product(range(lo, hi + 1), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if not all(a.holds(assignment) for a in hard):
            continue
        if all(any(a.holds(assignment) for a in clause) for clause in clauses):
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_random_formulas_match_brute_force(data):
    num_vars = data.draw(st.integers(2, 4))
    variables = [f"v{i}" for i in range(num_vars)]
    clauses = []
    for _ in range(data.draw(st.integers(1, 8))):
        clause = []
        for _ in range(data.draw(st.integers(1, 3))):
            x, y = data.draw(st.sampled_from([
                (a, b) for a in variables for b in variables if a != b
            ]))
            clause.append(Atom(x, y, data.draw(st.integers(-4, 4))))
        clauses.append(clause)

    solver = DlSmtSolver()
    hard = []
    for v in variables:
        hard.append(var_ge(v, 0))
        hard.append(var_le(v, 6))
        solver.require(hard[-2])
        solver.require(hard[-1])
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.check()
    expected = _brute_force_idl(variables, hard, clauses)
    assert result.sat == expected
    if result.sat:
        model = result.model
        assert all(a.holds(model) for a in hard)
        for clause in clauses:
            assert any(a.holds(model) for a in clause)
