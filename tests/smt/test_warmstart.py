"""Warm-start reuse across DPLL(T) solves: soundness and cache hygiene.

What may carry across formulas: theory lemmas (T-valid universally),
branching heuristics (steering only) and the difference-logic potential
(any potential is feasible for an empty graph).  What must not:
CDCL-learned clauses (resolvents of a *specific* CNF) — the solver
never exports those — and any state from a superseded store snapshot,
which :class:`WarmStartCache` enforces by identity keying plus
publish-time invalidation.
"""

from types import SimpleNamespace

import pytest

from repro.core.baselines import schedule_etsn
from repro.core.schedule import validate
from repro.model.stream import Priorities, Stream
from repro.model.units import milliseconds
from repro.smt import DlSmtSolver, diff_ge, var_ge, var_le
from repro.smt.theory import DifferenceLogic
from repro.smt.terms import diff_le
from repro.smt.warmstart import MAX_LEMMAS, WarmStartCache, WarmStartState


def _unsat_cycle():
    """a - b >= 1 and b - a >= 1: a negative cycle, pure theory."""
    solver = DlSmtSolver()
    solver.require(diff_ge("a", "b", 1))
    solver.require(diff_ge("b", "a", 1))
    return solver


class TestSolverWarmStart:
    def test_theory_lemmas_survive_a_solve(self):
        solver = _unsat_cycle()
        assert not solver.check().sat
        state = solver.export_warm_state()
        assert state.lemmas, "theory conflict should export a lemma"
        assert state.phases and state.potentials is not None

    def test_injected_lemmas_keep_the_verdict(self):
        cold = _unsat_cycle()
        assert not cold.check().sat
        state = cold.export_warm_state()
        # a SAT formula over the same atoms, each with an escape hatch:
        # the injected lemma (theory-valid) must not flip the verdict,
        # only prune the dead branch
        warm = DlSmtSolver()
        warm.add_clause([diff_ge("a", "b", 1), var_ge("a", 5)])
        warm.add_clause([diff_ge("b", "a", 1), var_ge("b", 5)])
        injected = warm.apply_warm_state(state)
        assert injected >= 1
        result = warm.check()
        assert result.sat
        assert result.stats["warm_lemmas"] == injected

    def test_warm_and_cold_agree_on_unsat(self):
        first = _unsat_cycle()
        assert not first.check().sat
        state = first.export_warm_state()
        rerun = _unsat_cycle()
        rerun.apply_warm_state(state)
        assert not rerun.check().sat

    def test_lemmas_with_unknown_atoms_are_skipped(self):
        solver = _unsat_cycle()
        assert not solver.check().sat
        state = solver.export_warm_state()
        stranger = DlSmtSolver()
        stranger.require(var_ge("z", 0))
        stranger.require(var_le("z", 3))
        assert stranger.apply_warm_state(state) == 0
        assert stranger.check().sat

    def test_proof_logging_refuses_warm_state(self):
        # injected lemmas are not input clauses; they would corrupt
        # the certificate's CNF, so warm start is a no-op under proof
        donor = _unsat_cycle()
        assert not donor.check().sat
        state = donor.export_warm_state()
        certified = DlSmtSolver(proof=True)
        certified.require(diff_ge("a", "b", 1))
        certified.require(diff_ge("b", "a", 1))
        assert certified.apply_warm_state(state) == 0
        result = certified.check()
        assert not result.sat
        assert result.stats["warm_lemmas"] == 0
        assert result.certificate is not None


class TestPotentialSeeding:
    def test_seed_before_any_assertion(self):
        dl = DifferenceLogic()
        dl.seed_potential({"a": 7, "b": 2})
        assert dl.assert_atom(diff_le("a", "b", -1), "t") is None

    def test_seed_after_assertion_is_unsound_and_refused(self):
        dl = DifferenceLogic()
        assert dl.assert_atom(diff_le("a", "b", -1), "t") is None
        with pytest.raises(ValueError, match="before the first assertion"):
            dl.seed_potential({"a": 7})


class TestWarmStartCache:
    def _snapshot(self):
        topology = object()
        return SimpleNamespace(topology=topology)

    def test_identity_keying_hits_only_the_same_object(self):
        cache = WarmStartCache()
        snap = self._snapshot()
        cache.put(snap, WarmStartState())
        assert cache.get(snap) is not None
        lookalike = SimpleNamespace(topology=snap.topology)
        assert cache.get(lookalike) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidate_drops_everything(self):
        cache = WarmStartCache()
        snaps = [self._snapshot() for _ in range(3)]
        for snap in snaps:
            cache.put(snap, WarmStartState())
        assert len(cache) == 3
        assert cache.invalidate() == 3
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert all(cache.get(s) is None for s in snaps)
        # idempotent: an empty invalidate is not counted
        assert cache.invalidate() == 0
        assert cache.invalidations == 1

    def test_lru_eviction_respects_capacity(self):
        cache = WarmStartCache(capacity=2)
        first, second, third = (self._snapshot() for _ in range(3))
        cache.put(first, WarmStartState())
        cache.put(second, WarmStartState())
        assert cache.get(first) is not None  # refresh first
        cache.put(third, WarmStartState())   # evicts second
        assert cache.get(second) is None
        assert cache.get(first) is not None
        assert cache.get(third) is not None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            WarmStartCache(capacity=0)

    def test_trimmed_bounds_the_lemma_count(self):
        lemmas = [[diff_ge("a", "b", i)] for i in range(MAX_LEMMAS + 10)]
        state = WarmStartState(lemmas=lemmas)
        trimmed = state.trimmed()
        assert len(trimmed.lemmas) == MAX_LEMMAS
        # most recent lemmas are the ones kept
        assert trimmed.lemmas[-1] == lemmas[-1]
        assert trimmed.lemmas[0] == lemmas[10]


class TestEndToEndWarmSolve:
    def _streams(self, topology):
        period = milliseconds(8)
        return [
            Stream(
                name=f"s{i}", priority=Priorities.NSH_PL,
                path=tuple(topology.shortest_path(src, dst)),
                e2e_ns=period, length_bytes=1500, period_ns=period,
            )
            for i, (src, dst) in enumerate(
                [("D1", "D3"), ("D2", "D3"), ("D3", "D1")]
            )
        ]

    def test_warm_solve_matches_cold_schedule(self, star_topology):
        streams = self._streams(star_topology)
        exported = []
        cold = schedule_etsn(
            star_topology, streams, (), backend="smt",
            warm_state_sink=exported.append,
        )
        validate(cold)
        assert len(exported) == 1
        warm = schedule_etsn(
            star_topology, streams, (), backend="smt",
            warm_start=exported[0],
        )
        validate(warm)
        assert ({s.name for s in warm.streams}
                == {s.name for s in cold.streams})
