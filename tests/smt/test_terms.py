"""Difference-logic atom tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smt.terms import ZERO, Atom, diff_ge, diff_le, var_ge, var_le


class TestAtom:
    def test_negation_is_involutive(self):
        a = Atom("x", "y", 5)
        assert a.negate().negate() == a

    def test_negation_semantics(self):
        # not(x - y <= 5)  ==  y - x <= -6
        n = Atom("x", "y", 5).negate()
        assert n == Atom("y", "x", -6)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Atom("x", "x", 0)

    def test_canonical_pairs_complements(self):
        a = Atom("x", "y", 5)
        ca, sa = a.canonical()
        cn, sn = a.negate().canonical()
        assert ca == cn
        assert sa == -sn

    def test_holds(self):
        assert Atom("x", "y", 5).holds({"x": 3, "y": 0})
        assert not Atom("x", "y", 5).holds({"x": 9, "y": 0})
        assert Atom("x", ZERO, 5).holds({"x": 5})

    @given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-50, 50))
    def test_exactly_one_of_atom_and_negation_holds(self, x, y, c):
        atom = Atom("x", "y", c)
        values = {"x": x, "y": y}
        assert atom.holds(values) != atom.negate().holds(values)


class TestConstructors:
    def test_var_le(self):
        assert var_le("x", 7) == Atom("x", ZERO, 7)

    def test_var_ge(self):
        # x >= 7  ==  ZERO - x <= -7
        a = var_ge("x", 7)
        assert a.holds({"x": 7})
        assert a.holds({"x": 100})
        assert not a.holds({"x": 6})

    def test_diff_le_ge_duality(self):
        le = diff_le("x", "y", 3)
        ge = diff_ge("x", "y", 3)
        values_low = {"x": 0, "y": 0}
        assert le.holds(values_low)
        assert not ge.holds(values_low)
        values_high = {"x": 10, "y": 0}
        assert not le.holds(values_high)
        assert ge.holds(values_high)
