"""ScheduleStore: versioned snapshots, CAS publishes, churn metrics."""

import pytest

from repro.core.baselines import schedule_etsn
from repro.core.incremental import add_tct_stream
from repro.model.stream import Priorities, Stream
from repro.model.units import milliseconds
from repro.service import ScheduleStore, StaleVersionError, empty_schedule


def _tct(topo, name, src="D1", dst="D3"):
    period = milliseconds(8)
    return Stream(
        name=name, path=tuple(topo.shortest_path(src, dst)),
        e2e_ns=period, priority=Priorities.NSH_PL,
        length_bytes=1500, period_ns=period,
    )


@pytest.fixture
def base(star_topology):
    return schedule_etsn(star_topology, [_tct(star_topology, "s1")], [])


class TestStore:
    def test_negative_history_limit_rejected(self, base):
        with pytest.raises(ValueError, match="history_limit"):
            ScheduleStore(base, history_limit=-1)

    def test_zero_history_limit_disables_retention(self, star_topology, base):
        store = ScheduleStore(base, history_limit=0)
        store.publish(add_tct_stream(base, _tct(star_topology, "s2", src="D2")))
        assert store.history() == []

    def test_initial_snapshot_is_version_zero(self, base):
        store = ScheduleStore(base)
        snap = store.snapshot()
        assert snap.version == 0
        assert snap.schedule is base

    def test_publish_bumps_version(self, star_topology, base):
        store = ScheduleStore(base)
        after = add_tct_stream(base, _tct(star_topology, "s2", src="D2"))
        snap = store.publish(after)
        assert snap.version == 1
        assert store.schedule is after

    def test_readers_keep_old_snapshot(self, star_topology, base):
        store = ScheduleStore(base)
        reader = store.snapshot()
        store.publish(add_tct_stream(base, _tct(star_topology, "s2", src="D2")))
        # the reader's snapshot is unaffected by the publish
        assert reader.version == 0
        assert all(s.name != "s2" for s in reader.schedule.streams)
        assert store.version == 1

    def test_cas_conflict_refused(self, star_topology, base):
        store = ScheduleStore(base)
        after = add_tct_stream(base, _tct(star_topology, "s2", src="D2"))
        store.publish(after, expected_version=0)
        with pytest.raises(StaleVersionError):
            store.publish(after, expected_version=0)
        assert store.metrics.counter("store.cas_conflicts").value == 1
        assert store.version == 1  # refused publish left the store alone

    def test_history_retained_and_bounded(self, star_topology, base):
        store = ScheduleStore(base, history_limit=2)
        schedule = base
        for i in range(4):
            schedule = add_tct_stream(
                schedule, _tct(star_topology, f"g{i}", src="D2"))
            store.publish(schedule)
        history = store.history()
        assert len(history) == 2
        assert [s.version for s in history] == [2, 3]

    def test_churn_metrics(self, star_topology, base):
        store = ScheduleStore(base)
        schedule = base
        for i in range(3):
            schedule = add_tct_stream(
                schedule, _tct(star_topology, f"g{i}", src="D2"))
            store.publish(schedule)
        assert store.metrics.counter("store.publishes").value == 3
        assert store.metrics.gauge("store.version").value == 3

    def test_empty_schedule_seed(self, star_topology):
        store = ScheduleStore(empty_schedule(star_topology))
        assert store.schedule.streams == []
        assert store.version == 0
