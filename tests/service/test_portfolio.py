"""Portfolio racing: rungs race, first conclusive wins, losers die.

These tests run the same request mixes through a sequential ladder and
a racing one and demand identical verdicts — racing is a latency
optimisation, never a semantic one.  They pass unchanged under
``REPRO_SANITIZE_LOCKS=1`` (CI runs them that way): the race
coordinator takes per-entry locks strictly after the service lock.

Deterministic loser-cancellation needs a rung that is still running
when the winner lands; every real rung is microsecond-fast on these
small fixtures, so the slow-full tests wrap the full rung's
``schedule_etsn`` in a sleep via monkeypatch.
"""

import time

import pytest

from repro.core.schedule import validate
from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    Remove,
    RungConfig,
    ScheduleStore,
    ServiceConfig,
    empty_schedule,
)
from repro.service import admission as admission_module
from tests.conftest import MTU_WIRE_NS


def _tct(name, src="D1", dst="D3", period_ms=8, length=1500, share=False,
         period_ns=None, e2e_ns=None):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=period_ns or milliseconds(period_ms), e2e_ns=e2e_ns,
        length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def _mix():
    return [
        _tct("a"),
        _tct("b", src="D2"),
        _tct("share0", src="D1", dst="D2", period_ms=20, share=True),
        _tct("share1", src="D3", dst="D2", period_ms=20, share=True),
        Remove("a"),
        # a hog the whole ladder rejects
        _tct("hog", src="D2", period_ms=4, length=40 * 1500),
        _tct("c", src="D1", dst="D2", period_ms=16, length=800),
    ]


def _service(star_topology, **overrides):
    config = ServiceConfig(fastpath=False, **overrides)
    return AdmissionService(
        ScheduleStore(empty_schedule(star_topology)), config=config
    )


def _slow_full(monkeypatch, delay_s):
    """Make the full rung's solve take at least ``delay_s``."""
    real = admission_module.schedule_etsn

    def slowed(*args, **kwargs):
        time.sleep(delay_s)
        return real(*args, **kwargs)

    monkeypatch.setattr(admission_module, "schedule_etsn", slowed)


def _await_no_orphans(service, budget_s=5.0):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        gauges = service.metrics.to_dict()["gauges"]
        if gauges.get("solver.orphans_running", 0) == 0:
            return
        time.sleep(0.01)
    raise AssertionError("abandoned solver never unwound")


class TestRacingSemantics:
    def test_race_matches_sequential_verdicts(self, star_topology):
        sequential = _service(star_topology)
        racing = _service(star_topology, portfolio=True)
        for request in _mix():
            expected = sequential.submit(request)
            actual = racing.submit(request)
            assert actual.accepted == expected.accepted, request
        assert racing.store.version == sequential.store.version
        validate(racing.store.schedule)
        assert ({s.name for s in racing.store.schedule.streams}
                == {s.name for s in sequential.store.schedule.streams})
        counters = racing.metrics.to_dict()["counters"]
        assert counters["portfolio.races"] == len(_mix())

    def test_rejection_records_every_raced_attempt(self, star_topology):
        service = _service(star_topology, portfolio=True)
        decision = service.submit(
            _tct("hog", period_ms=4, length=40 * 1500)
        )
        assert not decision.accepted
        # no winner: every rung's failure lands in the attempt log
        assert set(decision.attempts) >= {"incremental", "full", "heuristic"}

    def test_certify_disables_racing(self, star_topology):
        service = _service(
            star_topology, portfolio=True, backend="smt", certify=True
        )
        assert service.submit(_tct("a")).accepted
        counters = service.metrics.to_dict()["counters"]
        assert "portfolio.races" not in counters

    def test_single_rung_ladder_never_races(self, star_topology):
        service = _service(
            star_topology, portfolio=True,
            rungs=(RungConfig("incremental"),),
        )
        assert service.submit(_tct("a")).accepted
        assert "portfolio.races" not in service.metrics.to_dict()["counters"]


class TestLoserCancellation:
    def test_lost_race_abandons_the_slow_rung(
        self, star_topology, monkeypatch
    ):
        _slow_full(monkeypatch, 0.3)
        service = _service(star_topology, portfolio=True)
        decision = service.submit(_tct("a"))
        assert decision.accepted
        assert decision.rung == "incremental"
        counters = service.metrics.to_dict()["counters"]
        # full was still asleep when incremental won
        assert counters["portfolio.losers_cancelled"] >= 1
        assert (counters["solver.threads_abandoned"]
                == counters["portfolio.losers_cancelled"])
        # the orphan decrements the gauge as it unwinds
        _await_no_orphans(service)

    def test_overdue_rung_times_out_and_is_abandoned(
        self, star_topology, monkeypatch
    ):
        _slow_full(monkeypatch, 0.6)
        service = _service(
            star_topology, portfolio=True,
            rungs=(
                RungConfig("incremental"),
                RungConfig("full", timeout_s=0.05),
                RungConfig("heuristic"),
            ),
        )
        # the whole ladder rejects the hog; full never gets to finish
        decision = service.submit(
            _tct("hog", period_ms=4, length=40 * 1500)
        )
        assert not decision.accepted
        assert "budget (raced)" in decision.attempts["full"]
        counters = service.metrics.to_dict()["counters"]
        assert counters["rungs.full.timeouts"] == 1
        assert counters["solver.threads_abandoned"] == 1
        _await_no_orphans(service)

    def test_abandonment_emits_solver_abandoned_event(
        self, star_topology, monkeypatch
    ):
        from repro.obs import EventLog, filter_events

        _slow_full(monkeypatch, 0.3)
        events = EventLog(clock=lambda: 0)
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(fastpath=False, portfolio=True),
            events=events,
        )
        assert service.submit(_tct("a")).accepted
        abandoned = filter_events(events.events(), kind="solver.abandoned")
        assert [e.attributes["rung"] for e in abandoned] == ["full"]
        assert abandoned[0].attributes["cause"] == "lost race"
        _await_no_orphans(service)


class TestRacingWithFastpath:
    def test_fastpath_wins_before_any_race_starts(self, star_topology):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(portfolio=True),
        )
        assert service.submit(_tct("a")).rung == "fastpath"
        counters = service.metrics.to_dict()["counters"]
        assert counters["fastpath.accepts"] == 1
        assert "portfolio.races" not in counters

    def test_fallthrough_still_races_the_remaining_rungs(
        self, star_topology
    ):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(portfolio=True),
        )
        period = 4 * MTU_WIRE_NS
        for i in range(3):
            seeded = service.submit(_tct(
                f"s{i}", src="D1", dst="D3", period_ns=period,
            ))
            assert seeded.accepted and seeded.rung == "fastpath"
        # constructive placement fails on the tight deadline, no
        # necessary condition trips: inconclusive, so the rungs race
        service.submit(_tct(
            "probe", src="D2", dst="D3", period_ns=period,
            e2e_ns=3 * MTU_WIRE_NS,
        ))
        counters = service.metrics.to_dict()["counters"]
        assert counters["fastpath.fallthroughs"] == 1
        assert counters["portfolio.races"] == 1
