"""Multi-writer CAS contention on a shared ScheduleStore.

The write lock makes a CAS conflict unreachable from a single service
instance, but the cluster shares stores between writers; these tests
drive the conflict deterministically and check the bounded-rebase and
orphan-thread accounting that makes contention observable.
"""

import threading
import time

import pytest

from repro.model.stream import Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    ScheduleStore,
    StaleVersionError,
    empty_schedule,
)
from repro.service.admission import (
    MAX_REBASE_ATTEMPTS,
    REASON_CAS_EXHAUSTED,
    RungTimeout,
    _call_with_timeout,
)
from repro.service.metrics import MetricsRegistry


def _tct(name, src="D1", dst="D3", period_ms=8):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=1000,
        priority=Priorities.NSH_PH,
    ))


class RendezvousStore(ScheduleStore):
    """Forces two concurrent writers to pin the *same* version.

    Once armed, the first two ``snapshot()`` calls meet at a barrier
    before returning, so both writers base their solve on version N and
    exactly one of their publishes must lose the CAS race.
    """

    def arm(self) -> None:
        self._rdv_barrier = threading.Barrier(2, timeout=10)
        self._rdv_remaining = 2
        self._rdv_lock = threading.Lock()

    def snapshot(self):
        snap = super().snapshot()
        if getattr(self, "_rdv_barrier", None) is not None:
            with self._rdv_lock:
                wait = self._rdv_remaining > 0
                self._rdv_remaining -= 1
            if wait:
                try:
                    self._rdv_barrier.wait()
                except threading.BrokenBarrierError:
                    pass
        return snap


class AlwaysStaleStore(ScheduleStore):
    """Every publish loses the CAS race — pathological contention."""

    def publish(self, schedule, expected_version=None):
        self._metrics.counter("store.cas_conflicts").inc()
        raise StaleVersionError("synthetic contention")


class TestSharedStoreContention:
    def test_concurrent_writers_never_lose_a_stream(self, star_topology):
        store = RendezvousStore(empty_schedule(star_topology))
        writers = [AdmissionService(store), AdmissionService(store)]
        store.arm()

        decisions = {}

        def submit(index):
            decisions[index] = writers[index].submit(
                _tct(f"w{index}", src=f"D{index + 1}")
            )

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads)

        # both landed: the loser rebased onto the winner's publish
        assert decisions[0].accepted and decisions[1].accepted
        names = {s.name for s in store.schedule.streams}
        assert names == {"w0", "w1"}
        assert store.version == 2
        # the race was real and observable
        assert store.metrics.counter("store.cas_conflicts").value >= 1
        assert store.metrics.counter("batches.rebased").value >= 1

    def test_pathological_contention_is_bounded(self, star_topology):
        store = AlwaysStaleStore(empty_schedule(star_topology))
        service = AdmissionService(store)
        decision = service.submit(_tct("doomed"))
        assert not decision.accepted
        assert decision.reason == REASON_CAS_EXHAUSTED
        metrics = store.metrics
        assert metrics.counter("batches.rebased").value == MAX_REBASE_ATTEMPTS
        assert metrics.counter("batches.rebase_exhausted").value == 1


class TestAbandonedSolverThreads:
    def test_orphan_is_counted_then_drained(self):
        metrics = MetricsRegistry()
        release = threading.Event()

        def slow_solve():
            release.wait(10)
            return "never used"

        with pytest.raises(RungTimeout):
            _call_with_timeout(slow_solve, 0.05, metrics=metrics)
        assert metrics.counter("solver.threads_abandoned").value == 1
        assert metrics.gauge("solver.orphans_running").value == 1

        # the orphan finishes in the background and drains the gauge
        release.set()
        deadline = time.monotonic() + 5
        while (metrics.gauge("solver.orphans_running").value
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert metrics.gauge("solver.orphans_running").value == 0
        assert metrics.counter("solver.threads_abandoned").value == 1

    def test_fast_solve_is_not_abandoned(self):
        metrics = MetricsRegistry()
        assert _call_with_timeout(lambda: 42, 5.0, metrics=metrics) == 42
        assert metrics.counter("solver.threads_abandoned").value == 0
        assert metrics.gauge("solver.orphans_running").value == 0
