"""Metrics registry: counters, gauges, histograms, JSON export."""

import json

import pytest

from repro.service import MetricsRegistry
from repro.service.metrics import Histogram


class TestCounter:
    def test_counts(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        assert registry.counter("a").value == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_prefix_grouping(self):
        registry = MetricsRegistry()
        registry.counter("decisions.incremental").inc(4)
        registry.counter("decisions.rejected").inc(1)
        registry.counter("other").inc()
        assert registry.counters_with_prefix("decisions") == {
            "incremental": 4, "rejected": 1,
        }


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5

    def test_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50, abs=1)
        assert h.percentile(99) == pytest.approx(99, abs=1)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_bounded_reservoir(self):
        h = Histogram(max_samples=16, seed=3)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000          # exact count survives
        assert len(h._samples) == 16      # memory stays bounded
        assert h.percentile(50) >= 0

    def test_out_of_range_percentile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0


class TestRegistryExport:
    def test_to_dict_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests.total").inc(7)
        registry.gauge("queue.depth").set(3)
        registry.histogram("latency_ms").observe(1.5)
        data = json.loads(registry.to_json())
        assert data["counters"]["requests.total"] == 7
        assert data["gauges"]["queue.depth"] == 3
        assert data["histograms"]["latency_ms"]["count"] == 1
        assert data["histograms"]["latency_ms"]["p50"] == 1.5

    def test_instruments_are_singletons(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")
        assert registry.gauge("z") is registry.gauge("z")
