"""Metrics registry: counters, gauges, histograms, JSON export."""

import json
import threading

import pytest

from repro.service import MetricsRegistry
from repro.service.metrics import Gauge, Histogram


class TestCounter:
    def test_counts(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        assert registry.counter("a").value == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_prefix_grouping(self):
        registry = MetricsRegistry()
        registry.counter("decisions.incremental").inc(4)
        registry.counter("decisions.rejected").inc(1)
        registry.counter("other").inc()
        assert registry.counters_with_prefix("decisions") == {
            "incremental": 4, "rejected": 1,
        }

    def test_prefix_requires_dot_boundary(self):
        registry = MetricsRegistry()
        registry.counter("rungs.full").inc()
        registry.counter("rungsx.full").inc()
        assert registry.counters_with_prefix("rungs") == {"full": 1}

    def test_prefix_with_no_matches(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        assert registry.counters_with_prefix("missing") == {}


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge()
        gauge.set(5)
        assert gauge.value == 5
        gauge.set(-2.5)
        assert gauge.value == -2.5

    def test_add_delta(self):
        gauge = Gauge()
        gauge.add(3)
        gauge.add(-1)
        assert gauge.value == 2

    def test_concurrent_adds_do_not_lose_updates(self):
        gauge = Gauge()

        def bump():
            for _ in range(1_000):
                gauge.add(1)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 8_000


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5

    def test_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50, rel=0.19)
        assert h.percentile(99) == pytest.approx(99, rel=0.19)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_memory_is_bounded_by_bucket_count(self):
        """10k observations occupy the same fixed bucket table as 10 —
        the aggregates stay exact, only quantiles are bucketed."""
        h = Histogram()
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000          # exact count survives
        assert len(h._buckets) == len(Histogram()._buckets)  # fixed table
        assert h.percentile(50) >= 0

    def test_aggregates_stay_exact_at_any_volume(self):
        h = Histogram()
        n = 5_000
        for v in range(1, n + 1):
            h.observe(float(v))
        assert h.count == n
        assert h.sum == n * (n + 1) / 2
        assert h.mean == pytest.approx((n + 1) / 2)
        summary = h.summary()
        assert summary["count"] == n
        assert summary["min"] == 1.0
        assert summary["max"] == float(n)

    def test_percentiles_stay_in_observed_range(self):
        h = Histogram()
        for v in range(2_000):
            h.observe(float(v))
        for q in (0, 50, 90, 99, 100):
            assert 0.0 <= h.percentile(q) <= 1_999.0

    def test_bucket_relative_error_is_bounded(self):
        """Log buckets with a 2**0.25 growth factor put every quantile
        within ~19 % of the true value."""
        h = Histogram()
        for v in range(1, 1_001):
            h.observe(float(v))
        for q, true in ((50, 500), (90, 900), (99, 990)):
            assert h.percentile(q) == pytest.approx(true, rel=0.19)

    def test_merge_combines_shards(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.sum == 36.0
        assert a.min == 1.0
        assert a.max == 20.0

    def test_summary_round_trips_exactly(self):
        h = Histogram()
        for v in (0.2, 1.5, 3.0, 999.0, 2e7):  # incl. overflow bucket
            h.observe(v)
        restored = Histogram.from_summary(h.summary())
        assert restored.summary() == h.summary()

    def test_count_over_is_exact(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.observe(v)
        assert h.count_over(3.0) == 2     # strictly greater
        assert h.count_over(0.5) == 5
        assert h.count_over(5.0) == 0

    def test_summary_is_one_consistent_snapshot(self):
        """summary() under concurrent observes: count must equal what the
        writer finished plus at most what arrived mid-snapshot, and the
        aggregate fields must be mutually consistent (mean = sum/count)."""
        h = Histogram()
        stop = threading.Event()

        def writer():
            v = 0
            while not stop.is_set():
                h.observe(float(v % 100))
                v += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                s = h.summary()
                if s["count"]:
                    assert s["min"] <= s["p50"] <= s["max"]
                    assert s["mean"] == pytest.approx(s["sum"] / s["count"])
        finally:
            stop.set()
            thread.join()

    def test_out_of_range_percentile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0


class TestRegistryExport:
    def test_to_dict_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests.total").inc(7)
        registry.gauge("queue.depth").set(3)
        registry.histogram("latency_ms").observe(1.5)
        data = json.loads(registry.to_json())
        assert data["counters"]["requests.total"] == 7
        assert data["gauges"]["queue.depth"] == 3
        assert data["histograms"]["latency_ms"]["count"] == 1
        assert data["histograms"]["latency_ms"]["p50"] == 1.5

    def test_instruments_are_singletons(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")
        assert registry.gauge("z") is registry.gauge("z")

    def test_to_dict_snapshot_survives_concurrent_registration(self):
        """to_dict() while other threads register instruments and write:
        every exported value must be internally consistent and the call
        must never raise (the registry copies its tables under the lock)."""
        registry = MetricsRegistry()
        registry.counter("seed").inc()
        stop = threading.Event()

        def churn(worker: int):
            i = 0
            while not stop.is_set():
                registry.counter(f"c{worker}.{i % 20}").inc()
                registry.gauge(f"g{worker}").add(1)
                registry.histogram(f"h{worker}").observe(float(i % 10))
                i += 1

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(100):
                data = registry.to_dict()
                assert data["counters"]["seed"] == 1
                for summary in data["histograms"].values():
                    if summary["count"]:
                        assert summary["min"] <= summary["max"]
        finally:
            stop.set()
            for t in threads:
                t.join()
