"""Admission tracing: request → rung → solve span chains, outcomes, and
solver-statistics harvesting into the metrics registry."""

from __future__ import annotations

import itertools

import pytest

from repro.model.stream import EctStream, Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.obs import Tracer, children_of, summarize_spans
from repro.service import (
    AdmissionService,
    AdmitEct,
    AdmitTct,
    ScheduleStore,
    ServiceConfig,
    empty_schedule,
)


def _tct(name, src="D1", dst="D3", period_ms=8, length=1500, share=False):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def _ect(name, src="D2", dst="D3", period_ms=16, length=512):
    return AdmitEct(EctStream(
        name=name, source=src, destination=dst,
        min_interevent_ns=milliseconds(period_ms),
        length_bytes=length, possibilities=4,
    ))


@pytest.fixture
def tracer():
    ticks = itertools.count(0, 1_000_000)  # 1 ms per clock reading
    return Tracer(clock=lambda: next(ticks))


@pytest.fixture
def service(star_topology, tracer):
    # fast path off: these tests are about the ladder's span chains
    return AdmissionService(
        ScheduleStore(empty_schedule(star_topology)), tracer=tracer,
        config=ServiceConfig(fastpath=False),
    )


def _by_name(spans):
    grouped = {}
    for span in spans:
        grouped.setdefault(span.name, []).append(span)
    return grouped


class TestRequestSpans:
    def test_accept_emits_request_rung_chain(self, service, tracer):
        assert service.submit(_tct("a")).accepted
        spans = _by_name(tracer.spans())
        (batch,) = spans["admission.batch"]
        (request,) = spans["admission.request"]
        assert request.parent_id == batch.span_id
        assert request.attributes["op"] == "admit-tct"
        assert request.attributes["stream"] == "a"
        assert request.attributes["accepted"] is True
        assert request.attributes["rung"] == "incremental"
        rungs = spans["admission.rung"]
        assert rungs[-1].attributes["outcome"] == "success"
        assert all(r.parent_id == batch.span_id for r in rungs)

    def test_solve_span_is_child_of_its_rung(self, service, tracer):
        service.submit(_tct("a"))
        spans = tracer.spans()
        rungs = [s for s in _by_name(spans)["admission.rung"]]
        solves = _by_name(spans).get("solve", [])
        assert solves
        rung_ids = {r.span_id for r in rungs}
        for solve in solves:
            assert solve.parent_id in rung_ids
        success = next(r for r in rungs
                       if r.attributes["outcome"] == "success")
        assert children_of(spans, success)

    def test_rejection_records_reason(self, service, tracer):
        # a stream too large for the 100 Mb/s star network
        hog = _tct("hog", period_ms=4, length=40 * 1500)
        decision = service.submit(hog)
        assert not decision.accepted
        (request,) = _by_name(tracer.spans())["admission.request"]
        assert request.attributes["accepted"] is False
        assert request.attributes["reason"]
        rungs = _by_name(tracer.spans())["admission.rung"]
        assert all(r.attributes["outcome"] in ("infeasible", "error",
                                               "timeout") for r in rungs)

    def test_every_request_in_a_batch_gets_a_span(self, service, tracer):
        service.enqueue(_tct("a"))
        service.enqueue(_ect("b"))
        decisions = service.drain()
        assert len(decisions) == 2
        requests = _by_name(tracer.spans())["admission.request"]
        assert sorted(r.attributes["stream"] for r in requests
                      if "accepted" in r.attributes) >= ["a", "b"]
        finished = [r for r in requests if r.end_ns is not None]
        assert len(finished) == len(requests)

    def test_request_ids_recorded(self, service, tracer):
        d1 = service.submit(_tct("a"))
        d2 = service.submit(_ect("b"))
        requests = _by_name(tracer.spans())["admission.request"]
        ids = {r.attributes.get("request_id") for r in requests}
        assert {d1.request_id, d2.request_id} <= ids

    def test_summary_reports_per_rung_latency(self, service, tracer):
        service.submit(_tct("a"))
        service.submit(_ect("b"))
        summary = summarize_spans(tracer.spans())
        assert "admission.request" in summary["spans"]
        assert summary["rungs"]
        for dist in summary["rungs"].values():
            assert dist["count"] >= 1
            assert dist["p50_ms"] <= dist["p99_ms"] <= dist["max_ms"]

    def test_untraced_service_behaves_identically(self, star_topology):
        traced = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)), tracer=Tracer()
        )
        plain = AdmissionService(
            ScheduleStore(empty_schedule(star_topology))
        )
        for svc in (traced, plain):
            assert svc.submit(_tct("a")).accepted
            assert not svc.submit(_tct("a")).accepted  # duplicate name
        assert plain.tracer.spans() == []


class TestDropVisibility:
    def test_spans_dropped_gauge_tracks_ring_eviction(self, star_topology):
        """A traced batch that overflows the span ring must surface the
        loss through the tracer.spans_dropped gauge — silent truncation
        is the bug this gauge exists to catch."""
        tracer = Tracer(max_spans=2)
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)), tracer=tracer
        )
        assert service.submit(_tct("a")).accepted
        assert tracer.dropped > 0
        gauge = service.metrics.gauge("tracer.spans_dropped")
        assert gauge.value == tracer.dropped

    def test_no_drop_gauge_without_a_tracer(self, star_topology):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology))
        )
        assert service.submit(_tct("a")).accepted
        assert "tracer.spans_dropped" not in \
            service.metrics.to_dict()["gauges"]


class TestEventJournal:
    def test_decisions_are_journalled_with_trace_correlation(
        self, star_topology, tracer
    ):
        from repro.obs import EventLog, filter_events

        events = EventLog(clock=lambda: 0)
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            tracer=tracer, events=events,
        )
        accepted = service.submit(_tct("a"))
        rejected = service.submit(_tct("hog", period_ms=4,
                                       length=40 * 1500))
        assert accepted.accepted and not rejected.accepted
        decisions = filter_events(events.events(),
                                  kind="admission.decision")
        assert [e.attributes["request"] for e in decisions] == ["a", "hog"]
        assert decisions[0].attributes["accepted"] is True
        assert decisions[1].attributes["accepted"] is False
        assert decisions[1].attributes["reason"]
        trace_ids = {s.trace_id for s in tracer.spans()}
        assert all(e.trace_id in trace_ids for e in decisions)

    def test_events_dropped_gauge_tracks_journal_eviction(
        self, star_topology
    ):
        from repro.obs import EventLog

        events = EventLog(clock=lambda: 0, max_events=1)
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)), events=events,
        )
        assert service.submit(_tct("a")).accepted
        assert service.submit(_tct("b", src="D2")).accepted
        assert events.dropped > 0
        assert service.metrics.gauge("events.dropped").value == \
            events.dropped


class TestSolverStatsHarvest:
    def test_smt_backend_folds_stats_into_metrics(self, star_topology):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(backend="smt", fastpath=False),
        )
        assert service.submit(_tct("base", share=True)).accepted
        assert service.submit(_ect("alarm")).accepted
        # the incremental primitive refuses sharing TCT when ECT exists,
        # so this climbs to the full rung — the SMT backend — whose
        # SolverStats snapshot must land in the solver.* counters
        decision = service.submit(_tct("late", src="D2", share=True))
        assert decision.accepted
        assert decision.rung == "full"
        counters = service.metrics.counters_with_prefix("solver")
        assert counters.get("theory_checks", 0) > 0
        assert "propagations" in counters
        assert "conflicts" in counters
