"""The analytic fast-path rung: verdict semantics and soundness.

The load-bearing property (checked by hypothesis below): the fast path
never decides something the solver ladder would decide differently —

* a conclusive ``accept`` carries an actual delta-validated schedule
  (the witness *is* the proof), and the full SMT re-solve of the same
  target set is satisfiable;
* a conclusive ``reject`` is backed by a necessary condition (wire-time
  floor, per-link capacity, pairwise gcd), so the full SMT re-solve of
  the same target set must raise :class:`InfeasibleError`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines import schedule_etsn
from repro.core.schedule import InfeasibleError, validate
from repro.model.stream import EctStream, Priorities, TctRequirement
from repro.model.units import MBPS_100, milliseconds
from repro.service import (
    AdmissionService,
    AdmitEct,
    AdmitTct,
    Remove,
    RungConfig,
    ScheduleStore,
    ServiceConfig,
    empty_schedule,
)
from repro.service import fastpath
from tests.conftest import MTU_WIRE_NS


def _tct(name, src="D1", dst="D3", period_ns=None, length=1500,
         share=False, e2e_ns=None):
    period_ns = period_ns if period_ns is not None else milliseconds(8)
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=period_ns, e2e_ns=e2e_ns, length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def _ect(name, src="D2", dst="D3", period_ms=16, length=512):
    return AdmitEct(EctStream(
        name=name, source=src, destination=dst,
        min_interevent_ns=milliseconds(period_ms),
        length_bytes=length, possibilities=4,
    ))


@pytest.fixture
def schedule(star_topology):
    return empty_schedule(star_topology)


class TestVerdicts:
    def test_constructive_accept_returns_validated_schedule(self, schedule):
        result = fastpath.evaluate(schedule, [_tct("a")])
        assert result.verdict == fastpath.ACCEPT
        assert result.conclusive
        assert result.schedule is not None
        validate(result.schedule)
        assert any(s.name == "a" for s in result.schedule.streams)
        # the base schedule was not mutated
        assert not schedule.streams

    def test_batch_accept_applies_every_operation(self, schedule):
        first = fastpath.evaluate(schedule, [_tct("a"), _tct("b", src="D2")])
        assert first.verdict == fastpath.ACCEPT
        second = fastpath.evaluate(
            first.schedule, [Remove("a"), _tct("c", src="D2", dst="D1")]
        )
        assert second.verdict == fastpath.ACCEPT
        names = {s.name for s in second.schedule.streams}
        assert names == {"b", "c"}

    def test_e2e_floor_rejects_impossible_deadline(self, schedule):
        # 1 us end-to-end over ~123 us of wire time on the first hop
        result = fastpath.evaluate(
            schedule, [_tct("tight", e2e_ns=1_000)]
        )
        assert result.verdict == fastpath.REJECT
        assert "e2e-floor" in result.reason

    def test_screen_route_is_schedule_free(self, star_topology):
        request = _tct("tight", e2e_ns=1_000)
        stream = request.requirement.resolve(star_topology)
        reason = fastpath.screen_route(stream)
        assert reason is not None and "e2e-floor" in reason
        ok = _tct("fine").requirement.resolve(star_topology)
        assert fastpath.screen_route(ok) is None

    def test_capacity_rejects_saturated_link(self, schedule):
        # five 1500-byte frames every 6 wire-times fill 5/6 of D->SW1;
        # a 2-frame newcomer needs 2/6 more: conclusive link overload
        period = 6 * MTU_WIRE_NS
        current = schedule
        for i in range(5):
            result = fastpath.evaluate(current, [AdmitTct(TctRequirement(
                name=f"s{i}", source="D2" if i % 2 else "D1",
                destination="D3", period_ns=period, length_bytes=1500,
                priority=Priorities.NSH_PL,
            ))])
            assert result.verdict == fastpath.ACCEPT
            current = result.schedule
        result = fastpath.evaluate(current, [AdmitTct(TctRequirement(
            name="hog", source="D2", destination="D3",
            period_ns=period, length_bytes=2 * 1500,
            priority=Priorities.NSH_PL,
        ))])
        assert result.verdict == fastpath.REJECT
        assert "link-capacity" in result.reason

    def test_inconclusive_falls_through_with_subsumption(self, schedule):
        # three D1->D3 seeds leave a single free slot on SW1->D3; the
        # probe's earliest fit there busts a 3-wire-time deadline, yet
        # no necessary condition trips (the link lands on exactly 4/4
        # density, capacity needs > 1) — so the verdict must be a
        # fall-through that lets the ladder skip its incremental rung
        period = 4 * MTU_WIRE_NS
        current = schedule
        for i in range(3):
            result = fastpath.evaluate(current, [AdmitTct(TctRequirement(
                name=f"s{i}", source="D1", destination="D3",
                period_ns=period, length_bytes=1500,
                priority=Priorities.NSH_PL,
            ))])
            assert result.verdict == fastpath.ACCEPT
            current = result.schedule
        probe = AdmitTct(TctRequirement(
            name="probe", source="D2", destination="D3",
            period_ns=period, e2e_ns=3 * MTU_WIRE_NS,
            length_bytes=1500, priority=Priorities.NSH_PL,
        ))
        result = fastpath.evaluate(current, [probe])
        assert result.verdict == fastpath.INCONCLUSIVE
        assert not result.conclusive
        assert result.subsumes_incremental

    def test_unknown_remove_is_inconclusive(self, schedule):
        result = fastpath.evaluate(schedule, [Remove("ghost")])
        assert result.verdict == fastpath.INCONCLUSIVE


class TestServiceIntegration:
    def test_fastpath_decision_publishes_and_counts(self, star_topology):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology))
        )
        assert service.submit(_tct("a")).rung == fastpath.RUNG_FASTPATH
        rejected = service.submit(_tct("tight", src="D2", e2e_ns=1_000))
        assert not rejected.accepted
        assert "e2e-floor" in rejected.reason
        counters = service.metrics.to_dict()["counters"]
        assert counters["fastpath.accepts"] == 1
        assert counters["fastpath.rejects"] == 1
        assert service.store.version == 1
        validate(service.store.schedule)

    def test_rejected_latency_histogram_observes(self, star_topology):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology))
        )
        service.submit(_tct("a"))
        service.submit(_tct("a"))  # duplicate name: rejected
        histograms = service.metrics.to_dict()["histograms"]
        assert histograms["latency.rejected_ms"]["count"] == 1


# -- hypothesis: the fast path agrees with the SMT solver --------------

DEVICES = ("D1", "D2", "D3")
PERIODS = (4 * MTU_WIRE_NS, 6 * MTU_WIRE_NS, 8 * MTU_WIRE_NS)


@st.composite
def fastpath_scenario(draw):
    """A small seeded schedule plus one probe admit on the star."""
    seeds = []
    for i in range(draw(st.integers(0, 2))):
        src = draw(st.sampled_from(DEVICES))
        dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
        seeds.append(AdmitTct(TctRequirement(
            name=f"seed{i}", source=src, destination=dst,
            period_ns=draw(st.sampled_from(PERIODS)),
            length_bytes=draw(st.sampled_from([800, 1500, 3000])),
            priority=Priorities.NSH_PL,
        )))
    src = draw(st.sampled_from(DEVICES))
    dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
    period = draw(st.sampled_from(PERIODS))
    probe = AdmitTct(TctRequirement(
        name="probe", source=src, destination=dst,
        period_ns=period,
        e2e_ns=draw(st.sampled_from([
            period, period // 2, MTU_WIRE_NS, MTU_WIRE_NS // 2,
        ])),
        length_bytes=draw(st.sampled_from([1500, 4500, 12 * 1500])),
        priority=Priorities.NSH_PL,
    ))
    return seeds, probe


def _star():
    from repro.model.topology import Topology

    topo = Topology()
    topo.add_switch("SW1")
    for device in DEVICES:
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    return topo


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fastpath_scenario())
def test_fastpath_never_contradicts_the_smt_solver(scenario):
    seeds, probe = scenario
    schedule = empty_schedule(_star())
    for seed in seeds:
        result = fastpath.evaluate(schedule, [seed])
        if result.verdict != fastpath.ACCEPT:
            return  # seeding failed; nothing to probe against
        schedule = result.schedule
    result = fastpath.evaluate(schedule, [probe])
    if not result.conclusive:
        return
    tct = [s for s in schedule.streams]
    target = tct + [probe.requirement.resolve(schedule.topology)]

    def smt_solve():
        return schedule_etsn(schedule.topology, target, (), backend="smt")

    if result.verdict == fastpath.ACCEPT:
        validate(result.schedule)  # the witness checks out...
        smt_solve()                # ...and the solver agrees it is SAT
    else:
        with pytest.raises(InfeasibleError):
            smt_solve()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4))
def test_warm_cache_invalidated_on_every_publish(names):
    """Every CAS publish clears the warm-start cache — no solve can
    ever reuse state from a superseded snapshot."""
    service = AdmissionService(
        ScheduleStore(empty_schedule(_star())),
        # full-SMT-only ladder so every decision exercises the cache
        config=ServiceConfig(
            backend="smt", fastpath=False,
            rungs=(RungConfig("full", timeout_s=None),),
        ),
    )
    admitted = set()
    for name in names:
        decision = service.submit(
            _tct(name) if name not in admitted else Remove(name)
        )
        if decision.accepted:
            admitted.symmetric_difference_update({name})
            assert len(service._warm_cache) == 0, (
                "publish left stale warm-start state behind"
            )
