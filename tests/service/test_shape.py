"""canonical_shape / shape_digest: name-independent request identity."""

import pytest

from repro.model.stream import EctStream, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmitEct,
    AdmitTct,
    Remove,
    canonical_shape,
    shape_digest,
)


def _tct(name, period_ms=8, length=1000, e2e_ms=None, share=False,
         src="D1", dst="D3"):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        e2e_ns=milliseconds(e2e_ms) if e2e_ms else None,
        share=share,
    ))


def _ect(name, interevent_ms=16, length=512, possibilities=4,
         src="D2", dst="D3"):
    return AdmitEct(EctStream(
        name=name, source=src, destination=dst,
        min_interevent_ns=milliseconds(interevent_ms),
        length_bytes=length, possibilities=possibilities,
    ))


class TestCanonicalShape:
    def test_name_never_enters_an_admit_shape(self):
        assert canonical_shape(_tct("alpha")) == canonical_shape(_tct("beta"))
        assert canonical_shape(_ect("alarm-1")) == canonical_shape(
            _ect("alarm-2")
        )

    def test_every_non_name_field_differentiates_tct(self):
        base = canonical_shape(_tct("x"))
        assert canonical_shape(_tct("x", period_ms=16)) != base
        assert canonical_shape(_tct("x", length=1400)) != base
        assert canonical_shape(_tct("x", e2e_ms=4)) != base
        assert canonical_shape(_tct("x", share=True)) != base
        assert canonical_shape(_tct("x", src="D2")) != base
        assert canonical_shape(_tct("x", dst="D2")) != base

    def test_every_non_name_field_differentiates_ect(self):
        base = canonical_shape(_ect("e"))
        assert canonical_shape(_ect("e", interevent_ms=32)) != base
        assert canonical_shape(_ect("e", length=64)) != base
        assert canonical_shape(_ect("e", possibilities=2)) != base
        assert canonical_shape(_ect("e", src="D1")) != base

    def test_tct_and_ect_shapes_never_collide(self):
        assert canonical_shape(_tct("x")) != canonical_shape(_ect("x"))

    def test_implicit_deadline_normalizes_to_the_period(self):
        # e2e_ns=None resolves to the period everywhere in the solver,
        # so the implicit and explicit spellings must share a shape
        implicit = canonical_shape(_tct("a", period_ms=8))
        explicit = canonical_shape(_tct("b", period_ms=8, e2e_ms=8))
        assert implicit == explicit

    def test_remove_is_keyed_by_name(self):
        assert canonical_shape(Remove("a")) == canonical_shape(Remove("a"))
        assert canonical_shape(Remove("a")) != canonical_shape(Remove("b"))

    def test_topology_resolves_the_route(self, star_topology):
        shape = canonical_shape(_tct("x"), topology=star_topology)
        route = shape[1]
        assert route[0] == "route"
        assert route[1:] == (("D1", "SW1"), ("SW1", "D3"))

    def test_endpoint_mode_and_route_mode_differ_but_are_consistent(
        self, star_topology
    ):
        with_topo_a = canonical_shape(_tct("a"), topology=star_topology)
        with_topo_b = canonical_shape(_tct("b"), topology=star_topology)
        assert with_topo_a == with_topo_b
        assert with_topo_a != canonical_shape(_tct("a"))

    def test_shape_is_hashable(self):
        assert {canonical_shape(_tct("a")), canonical_shape(_tct("b"))}

    def test_non_request_raises(self):
        with pytest.raises(TypeError):
            canonical_shape("not a request")


class TestShapeDigest:
    def test_digest_is_stable_and_name_independent(self):
        assert shape_digest(_tct("a")) == shape_digest(_tct("b"))
        assert shape_digest(_tct("a")) != shape_digest(_tct("a", length=64))

    def test_digest_length(self):
        assert len(shape_digest(_tct("a"))) == 16
        assert len(shape_digest(_tct("a"), length=8)) == 8
