"""AdmissionService: ladder climbing, batching, timeouts, and the
500-request storm acceptance criterion."""

import random
import time

import pytest

from repro.core.schedule import InfeasibleError, validate
from repro.model.stream import EctStream, Priorities, TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    RUNG_FASTPATH,
    RUNG_FULL,
    RUNG_HEURISTIC,
    RUNG_INCREMENTAL,
    AdmissionService,
    AdmitEct,
    AdmitTct,
    Remove,
    RungConfig,
    ScheduleStore,
    ServiceConfig,
    empty_schedule,
)
from tests.conftest import MTU_WIRE_NS


def _tct(name, src="D1", dst="D3", period_ms=8, length=1500, share=False):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        priority=Priorities.SH_PL if share else Priorities.NSH_PH,
        share=share,
    ))


def _ect(name, src="D2", dst="D3", period_ms=16, length=512):
    return AdmitEct(EctStream(
        name=name, source=src, destination=dst,
        min_interevent_ns=milliseconds(period_ms),
        length_bytes=length, possibilities=4,
    ))


@pytest.fixture
def service(star_topology):
    return AdmissionService(ScheduleStore(empty_schedule(star_topology)))


@pytest.fixture
def ladder_service(star_topology):
    """A service with the analytic fast path off, so every request
    exercises the solver ladder the tests below are about."""
    return AdmissionService(
        ScheduleStore(empty_schedule(star_topology)),
        config=ServiceConfig(fastpath=False),
    )


class TestLadder:
    def test_plain_tct_decided_by_fastpath(self, service):
        decision = service.submit(_tct("a"))
        assert decision.accepted
        assert decision.rung == RUNG_FASTPATH
        assert decision.store_version == 1
        validate(service.store.schedule)

    def test_plain_tct_lands_on_incremental_rung(self, ladder_service):
        decision = ladder_service.submit(_tct("a"))
        assert decision.accepted
        assert decision.rung == RUNG_INCREMENTAL
        assert decision.store_version == 1
        validate(ladder_service.store.schedule)

    def test_sharing_tct_climbs_to_full_resolve(self, ladder_service):
        service = ladder_service
        assert service.submit(_tct("base", share=True)).accepted
        assert service.submit(_ect("alarm")).accepted
        # the incremental primitive refuses sharing TCT when ECT exists,
        # so the ladder must climb to the full re-solve
        decision = service.submit(_tct("late-share", src="D2", share=True))
        assert decision.accepted
        assert decision.rung == RUNG_FULL
        assert RUNG_INCREMENTAL in decision.attempts
        validate(service.store.schedule)

    def test_overload_is_structured_rejection(self, ladder_service):
        service = ladder_service
        period = 6 * MTU_WIRE_NS
        for i in range(5):
            assert service.submit(AdmitTct(TctRequirement(
                name=f"s{i}", source="D1" if i % 2 else "D2",
                destination="D3", period_ns=period, length_bytes=1500,
                priority=Priorities.NSH_PL,
            ))).accepted
        before = service.store.snapshot()
        decision = service.submit(AdmitTct(TctRequirement(
            name="overload", source="D2", destination="D3",
            period_ns=period, length_bytes=1500,
            priority=Priorities.NSH_PL,
        )))
        assert not decision.accepted
        assert decision.rung is None
        assert "all ladder rungs failed" in decision.reason
        # every rung reported a reason
        assert set(decision.attempts) == {
            RUNG_INCREMENTAL, RUNG_FULL, RUNG_HEURISTIC,
        }
        # rejected admission did not publish anything
        assert service.store.snapshot() is before
        validate(service.store.schedule)

    def test_heuristic_rung_catches_full_failure(
        self, ladder_service, monkeypatch
    ):
        service = ladder_service
        monkeypatch.setattr(
            service, "_solve_full",
            lambda *a, **k: (_ for _ in ()).throw(InfeasibleError("stub")),
        )
        assert service.submit(_tct("base", share=True)).accepted
        assert service.submit(_ect("alarm")).accepted
        decision = service.submit(_tct("late-share", src="D2", share=True))
        assert decision.accepted
        assert decision.rung == RUNG_HEURISTIC
        assert decision.attempts[RUNG_FULL] == "stub"


class TestScreening:
    def test_duplicate_name_rejected_without_solving(self, service):
        service.submit(_tct("a"))
        attempts_before = service.metrics.counter(
            f"rungs.{RUNG_INCREMENTAL}.attempts").value
        decision = service.submit(_tct("a"))
        assert not decision.accepted
        assert "already in use" in decision.reason
        assert service.metrics.counter(
            f"rungs.{RUNG_INCREMENTAL}.attempts").value == attempts_before

    def test_unroutable_request_rejected(self, service):
        decision = service.submit(_tct("ghost-route", src="D1", dst="nowhere"))
        assert not decision.accepted
        assert "unroutable" in decision.reason

    def test_remove_unknown_rejected(self, service):
        decision = service.submit(Remove("ghost"))
        assert not decision.accepted
        assert "no stream named" in decision.reason

    def test_remove_ect_retires_possibilities(self, service):
        service.submit(_tct("base", share=True))
        service.submit(_ect("alarm"))
        decision = service.submit(Remove("alarm"))
        assert decision.accepted
        assert not service.store.schedule.ect_streams
        assert not service.store.schedule.probabilistic_streams()


class TestBatching:
    def test_compatible_requests_share_one_batch(self, service):
        decisions = service.submit_many(
            [_tct("a"), _tct("b", src="D2"), _tct("c")]
        )
        assert all(d.accepted for d in decisions)
        assert len({d.batch_id for d in decisions}) == 1
        assert {d.batch_size for d in decisions} == {3}
        # one publish for the whole batch
        assert service.store.version == 1
        assert service.metrics.counter("batches.total").value == 1

    def test_name_clash_splits_batches(self, service):
        decisions = service.submit_many([_tct("a"), Remove("a")])
        assert decisions[0].accepted
        assert decisions[1].accepted  # the remove sees the admit's result
        assert decisions[0].batch_id != decisions[1].batch_id

    def test_max_batch_respected(self, star_topology):
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(max_batch=2),
        )
        decisions = service.submit_many(
            [_tct(f"s{i}", period_ms=32) for i in range(5)]
        )
        assert all(d.accepted for d in decisions)
        assert len({d.batch_id for d in decisions}) == 3

    def test_infeasible_member_does_not_sink_batch(self, service):
        period = 6 * MTU_WIRE_NS
        hog = AdmitTct(TctRequirement(
            name="hog", source="D1", destination="D3",
            period_ns=period, length_bytes=12 * 1500,
            priority=Priorities.NSH_PL,
        ))
        decisions = service.submit_many([_tct("ok1"), hog, _tct("ok2", src="D2")])
        verdicts = {d.stream: d.accepted for d in decisions}
        assert verdicts == {"ok1": True, "hog": False, "ok2": True}
        assert service.metrics.counter("batches.splintered").value == 1
        validate(service.store.schedule)

    def test_queue_and_drain(self, service):
        service.enqueue(_tct("a"))
        service.enqueue(_tct("b", src="D2"))
        assert service.metrics.gauge("queue.depth").value == 2
        decisions = service.drain()
        assert [d.stream for d in decisions] == ["a", "b"]
        assert service.metrics.gauge("queue.depth").value == 0
        assert service.drain() == []

    def test_concurrent_enqueue_loses_no_requests(self, service):
        """Regression for the unlocked staging queue: many threads
        enqueueing at once must neither drop a request nor leave the
        depth gauge out of step (the queue is now guarded by its own
        lock, found by the extended lock-discipline lint)."""
        import threading

        # 40 streams fit the star topology without saturating it —
        # the race under test is in enqueue, not the solver ladder
        threads_n, per_thread = 8, 5
        barrier = threading.Barrier(threads_n)

        def producer(worker):
            barrier.wait()
            for i in range(per_thread):
                service.enqueue(
                    _tct(f"w{worker}q{i}", period_ms=8 + 2 * (i % 3))
                )

        workers = [
            threading.Thread(target=producer, args=(w,))
            for w in range(threads_n)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert service.metrics.gauge("queue.depth").value == (
            threads_n * per_thread
        )
        decisions = service.drain()
        assert len(decisions) == threads_n * per_thread
        assert service.metrics.gauge("queue.depth").value == 0


class TestTimeoutsAndRetries:
    def test_rung_timeout_climbs_ladder(self, star_topology, monkeypatch):
        config = ServiceConfig(fastpath=False, rungs=(
            RungConfig(RUNG_INCREMENTAL, timeout_s=0.02),
            RungConfig(RUNG_FULL, timeout_s=None),
        ))
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)), config=config)
        real = service._solve_incremental

        def slow(schedule, batch):
            time.sleep(0.2)
            return real(schedule, batch)

        monkeypatch.setattr(service, "_solve_incremental", slow)
        decision = service.submit(_tct("a"))
        assert decision.accepted
        assert decision.rung == RUNG_FULL
        assert "budget" in decision.attempts[RUNG_INCREMENTAL]
        assert service.metrics.counter(
            f"rungs.{RUNG_INCREMENTAL}.timeouts").value == 1

    def test_bounded_retry_with_backoff(self, star_topology, monkeypatch):
        sleeps = []
        config = ServiceConfig(fastpath=False, rungs=(
            RungConfig(RUNG_FULL, timeout_s=None, retries=2, backoff_s=0.01),
        ))
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)), config=config,
            sleep=sleeps.append)
        calls = {"n": 0}
        real = service._solve_full

        def flaky(schedule, batch):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient backend hiccup")
            return real(schedule, batch)

        monkeypatch.setattr(service, "_solve_full", flaky)
        decision = service.submit(_tct("a"))
        assert decision.accepted
        assert decision.rung == RUNG_FULL
        assert calls["n"] == 3
        assert sleeps == [0.01, 0.02]  # exponential backoff
        assert service.metrics.counter(f"rungs.{RUNG_FULL}.errors").value == 2

    def test_retries_do_not_apply_to_infeasible(self, star_topology, monkeypatch):
        config = ServiceConfig(fastpath=False, rungs=(
            RungConfig(RUNG_FULL, timeout_s=None, retries=3, backoff_s=0.01),
        ))
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)), config=config)
        calls = {"n": 0}

        def always_infeasible(schedule, batch):
            calls["n"] += 1
            raise InfeasibleError("deterministically full")

        monkeypatch.setattr(service, "_solve_full", always_infeasible)
        decision = service.submit(_tct("a"))
        assert not decision.accepted
        assert calls["n"] == 1  # no point retrying a deterministic verdict


class TestDeploymentEmission:
    def test_deployment_per_accepted_batch(self, star_topology):
        deployments = []
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(emit_deployments=True),
            on_deploy=deployments.append,
        )
        service.submit_many([_tct("a"), _tct("b", src="D2")])
        service.submit(_tct("dup"))
        service.submit(_tct("dup"))  # rejected: no deployment
        assert len(deployments) == 2
        assert service.metrics.counter("deployments.emitted").value == 2
        latest = service.last_deployment
        assert latest is deployments[-1]
        # the emitted deployment covers the published schedule
        assert {t.stream for t in latest.talkers} == {"a", "b", "dup"}
        assert latest.to_config_dict()["ports"]

    def test_removing_last_stream_skips_emission(self, star_topology):
        deployments = []
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(emit_deployments=True),
            on_deploy=deployments.append,
        )
        service.submit(_tct("solo"))
        decision = service.submit(Remove("solo"))
        assert decision.accepted
        # an empty schedule has no GCL to push: one deployment, one skip
        assert len(deployments) == 1
        assert (
            service.metrics.counter("deployments.skipped_empty").value == 1
        )


class TestStorm:
    """The acceptance criterion: a 500-request random admit/remove storm."""

    def test_500_request_storm(self, star_topology):
        rng = random.Random(42)
        # a service tuned for quick decisions: tight per-rung budgets and
        # a lean last-resort restart budget
        service = AdmissionService(
            ScheduleStore(empty_schedule(star_topology)),
            config=ServiceConfig(
                heuristic_min_restarts=8,
                rungs=(
                    RungConfig(RUNG_INCREMENTAL, timeout_s=10.0),
                    RungConfig(RUNG_FULL, timeout_s=10.0),
                    RungConfig(RUNG_HEURISTIC, timeout_s=10.0),
                ),
            ),
        )
        devices = ("D1", "D2", "D3")
        live = set()
        n_requests = 500
        decisions = []
        for i in range(n_requests):
            roll = rng.random()
            # keep the live population bounded so the storm churns
            # instead of only growing
            remove_p = 0.55 if len(live) >= 25 else 0.25
            if roll < remove_p and live:
                request = Remove(rng.choice(sorted(live)))
            elif roll < remove_p + 0.06:
                # deliberately hit ghosts / duplicates sometimes
                request = Remove(f"ghost{i % 7}")
            elif roll < remove_p + 0.12:
                src, dst = rng.sample(devices, 2)
                request = AdmitEct(EctStream(
                    name=f"e{i}", source=src, destination=dst,
                    min_interevent_ns=milliseconds(rng.choice((16, 32))),
                    length_bytes=rng.choice((256, 512)), possibilities=2,
                ))
            else:
                src, dst = rng.sample(devices, 2)
                request = AdmitTct(TctRequirement(
                    name=f"t{i}", source=src, destination=dst,
                    period_ns=milliseconds(rng.choice((8, 16, 32))),
                    length_bytes=rng.choice((400, 800, 1500)),
                    priority=Priorities.NSH_PH,
                ))

            decision = service.submit(request)
            decisions.append(decision)
            if decision.accepted:
                if request.op == "remove":
                    live.discard(request.stream_name)
                else:
                    live.add(request.stream_name)

        # every request got a structured decision; nothing crashed
        assert len(decisions) == n_requests
        assert all(d.accepted or d.reason for d in decisions)

        # the final snapshot passes the independent Eq. 1-7 validator
        final = service.store.schedule
        validate(final)
        names = {s.name for s in final.streams if s.parent is None}
        names.update(e.name for e in final.ect_streams)
        assert names == live

        # per-rung decision counts sum to the request total
        by_rung = service.metrics.counters_with_prefix("decisions")
        assert sum(by_rung.values()) == n_requests
        assert service.metrics.counter("requests.total").value == n_requests
        admitted = service.metrics.counter("requests.admitted").value
        rejected = service.metrics.counter("requests.rejected").value
        assert admitted + rejected == n_requests
        assert admitted > 0 and rejected > 0

        # metrics JSON is well-formed and carries latency percentiles
        import json
        data = json.loads(service.metrics_json())
        assert data["histograms"]["latency.decision_ms"]["count"] == n_requests


class TestWireFormat:
    def test_missing_field_raises_value_error(self):
        from repro.service.requests import request_from_dict

        with pytest.raises(ValueError, match="missing required field"):
            request_from_dict({"op": "admit-tct", "name": "x", "source": "D1"})

    def test_unknown_op_raises_value_error(self):
        from repro.service.requests import request_from_dict

        with pytest.raises(ValueError, match="unknown admission op"):
            request_from_dict({"op": "frobnicate"})


# The service-vs-offline equivalence stress test lives with the other
# incremental-scheduling equivalence checks in
# tests/core/test_incremental.py (TestServiceEquivalence).
