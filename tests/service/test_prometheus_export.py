"""Prometheus exposition: a strict format parser over the real CLI
output, pinned against a golden file.

The parser enforces the text exposition format (version 0.0.4) rules a
real scrape would: legal metric names, HELP/TYPE before samples, valid
TYPE keywords, float-parsable values, quantile labels in [0, 1], and
``_sum``/``_count`` companions and cumulative buckets for every
histogram.  Regenerate the golden with::

    PYTHONPATH=src python -m repro metrics --format prometheus \
        --deterministic > tests/service/golden_metrics.prom
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.cli import main

GOLDEN = pathlib.Path(__file__).parent / "golden_metrics.prom"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')
_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_exposition(text: str):
    """Strictly parse exposition text; returns {family: (type, samples)}
    with samples as {(name, labels): float}.  Raises AssertionError on
    any format violation."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    helped, current = set(), None
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}: {line!r}"
        assert line == line.rstrip(), f"trailing whitespace — {where}"
        if line.startswith("# HELP "):
            name = line.split(None, 3)[2]
            assert _METRIC_NAME.match(name), f"bad HELP name — {where}"
            assert name not in helped, f"duplicate HELP — {where}"
            helped.add(name)
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            assert _METRIC_NAME.match(name), f"bad TYPE name — {where}"
            assert kind in _TYPES, f"unknown type {kind!r} — {where}"
            assert name not in families, f"duplicate TYPE — {where}"
            assert name in helped, f"TYPE before HELP — {where}"
            families[name] = (kind, {})
            current = name
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            match = _SAMPLE.match(line)
            assert match, f"malformed sample — {where}"
            name, labels, value = match.group("name", "labels", "value")
            family = _family_of(name, families)
            assert family, f"sample without TYPE — {where}"
            assert family == current or name.startswith(current or ""), \
                f"sample outside its family block — {where}"
            parsed_labels = ()
            if labels:
                parsed_labels = tuple(
                    _parse_label(label, where)
                    for label in labels.split(",")
                )
            key = (name, parsed_labels)
            samples = families[family][1]
            assert key not in samples, f"duplicate sample — {where}"
            samples[key] = float(value)  # must parse
    return families


def _parse_label(label: str, where: str):
    match = _LABEL.match(label)
    assert match, f"malformed label {label!r} — {where}"
    name, value = match.groups()
    if name == "quantile":
        assert 0.0 <= float(value) <= 1.0, f"quantile out of range — {where}"
    return (name, value)


def _family_of(sample_name: str, families):
    """A sample belongs to the family whose name is its longest prefix
    (handles the _sum/_count/_min/_max companions)."""
    best = None
    for family in families:
        if sample_name == family or sample_name.startswith(family + "_"):
            if best is None or len(family) > len(best):
                best = family
    return best


@pytest.fixture
def exposition(capsys) -> str:
    assert main(["metrics", "--format", "prometheus",
                 "--deterministic"]) == 0
    return capsys.readouterr().out


class TestStrictParse:
    def test_cli_output_parses_strictly(self, exposition):
        families = parse_exposition(exposition)
        assert families

    def test_counters_end_in_total(self, exposition):
        families = parse_exposition(exposition)
        counters = {name for name, (kind, _) in families.items()
                    if kind == "counter"}
        assert counters
        assert all(name.endswith("_total") for name in counters)

    def test_histograms_carry_cumulative_buckets_sum_count(
        self, exposition
    ):
        families = parse_exposition(exposition)
        histograms = {name: samples for name, (kind, samples)
                      in families.items() if kind == "histogram"}
        assert histograms
        for name, samples in histograms.items():
            buckets = [
                (labels, value) for (sample, labels), value
                in samples.items() if sample == f"{name}_bucket"
            ]
            assert buckets, f"{name} has no _bucket samples"
            les = [dict(labels)["le"] for labels, _ in buckets]
            assert les[-1] == "+Inf"
            counts = [value for _, value in buckets]
            assert counts == sorted(counts), "buckets must be cumulative"
            assert (f"{name}_sum", ()) in samples
            assert (f"{name}_count", ()) in samples
            # the +Inf bucket is the count, by definition
            assert counts[-1] == samples[(f"{name}_count", ())]

    def test_histograms_export_quantile_companions(self, exposition):
        families = parse_exposition(exposition)
        assert "repro_latency_decision_ms" in families
        for suffix in ("_p50", "_p99", "_p999"):
            name = f"repro_latency_decision_ms{suffix}"
            assert name in families, f"missing companion gauge {name}"
            assert families[name][0] == "gauge"

    def test_admission_families_present(self, exposition):
        families = parse_exposition(exposition)
        assert "repro_requests_total_total" in families
        assert "repro_requests_admitted_total" in families
        assert "repro_store_version" in families
        assert "repro_latency_decision_ms" in families

    def test_demo_run_counts_are_stable(self, exposition):
        """The deterministic demo admits 2 of 3 requests."""
        families = parse_exposition(exposition)
        samples = families["repro_requests_total_total"][1]
        assert samples[("repro_requests_total_total", ())] == 3.0
        admitted = families["repro_requests_admitted_total"][1]
        assert admitted[("repro_requests_admitted_total", ())] == 2.0


class TestGoldenFile:
    def test_matches_golden(self, exposition):
        assert exposition == GOLDEN.read_text(), (
            "prometheus exposition drifted from the golden file; if the "
            "change is intentional, regenerate it (see module docstring)"
        )

    def test_golden_itself_parses(self):
        parse_exposition(GOLDEN.read_text())


class TestParserRejectsGarbage:
    def test_sample_without_type(self):
        with pytest.raises(AssertionError):
            parse_exposition("repro_x 1\n")

    def test_bad_value(self):
        with pytest.raises(ValueError):
            parse_exposition(
                "# HELP repro_x h\n# TYPE repro_x gauge\nrepro_x abc\n"
            )

    def test_unknown_type_keyword(self):
        with pytest.raises(AssertionError):
            parse_exposition("# HELP repro_x h\n# TYPE repro_x float\n")

    def test_missing_trailing_newline(self):
        with pytest.raises(AssertionError):
            parse_exposition("# HELP repro_x h\n# TYPE repro_x gauge")
