"""Public-API surface tests: exports exist, are documented, and the
advertised quickstart works end to end."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cnc",
    "repro.core",
    "repro.experiments",
    "repro.model",
    "repro.service",
    "repro.sim",
    "repro.smt",
    "repro.traffic",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_callables_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_version(self):
        import repro

        assert repro.__version__


class TestQuickstart:
    def test_readme_quickstart_flow(self):
        """The exact flow the README advertises."""
        from repro import (EctStream, SimConfig, TctRequirement, Topology,
                           TsnSimulation, build_gcl, schedule_etsn)

        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("sensor")
        topo.add_device("controller")
        topo.add_link("sensor", "SW1")
        topo.add_link("controller", "SW1")

        tct = TctRequirement("telemetry", "sensor", "controller",
                             period_ns=4_000_000, length_bytes=1000,
                             share=True, priority=4).resolve(topo)
        ect = EctStream("panic", "sensor", "controller",
                        min_interevent_ns=16_000_000, length_bytes=1500,
                        possibilities=8)

        schedule = schedule_etsn(topo, [tct], [ect])
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(
            schedule, gcl, SimConfig(duration_ns=500_000_000)
        ).run()
        stats = report.recorder.stats("panic")
        assert stats.count > 10
        assert stats.maximum_ns <= ect.effective_e2e_ns
