"""Unit and time-arithmetic tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import units


class TestConversions:
    def test_milliseconds(self):
        assert units.milliseconds(4) == 4_000_000

    def test_microseconds(self):
        assert units.microseconds(1.5) == 1_500

    def test_seconds(self):
        assert units.seconds(2) == 2_000_000_000

    def test_nanoseconds_identity(self):
        assert units.nanoseconds(17) == 17

    def test_ns_to_us_roundtrip(self):
        assert units.ns_to_us(units.microseconds(250)) == pytest.approx(250)

    def test_ns_to_ms_roundtrip(self):
        assert units.ns_to_ms(units.milliseconds(16)) == pytest.approx(16)


class TestTransmissionTime:
    def test_mtu_frame_on_100mbps(self):
        # 1538 wire bytes at 100 Mb/s = 123.04 us
        wire = units.wire_bytes(1500)
        assert wire == 1500 + units.ETHERNET_OVERHEAD_BYTES
        assert units.transmission_time_ns(wire, units.MBPS_100) == 123_040

    def test_gigabit_is_ten_times_faster(self):
        wire = units.wire_bytes(1500)
        slow = units.transmission_time_ns(wire, units.MBPS_100)
        fast = units.transmission_time_ns(wire, units.GBPS_1)
        assert slow == 10 * fast

    def test_rounds_up(self):
        # 1 byte at 1 Gb/s = 8 ns exactly; at 3 bit/ns-ish rates it must ceil
        assert units.transmission_time_ns(1, units.GBPS_1) == 8
        assert units.transmission_time_ns(1, 3) == (8 * units.NS_PER_S + 2) // 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(0, units.MBPS_100)
        with pytest.raises(ValueError):
            units.transmission_time_ns(100, 0)


class TestWireBytes:
    def test_minimum_padding(self):
        assert units.wire_bytes(1) == 46 + units.ETHERNET_OVERHEAD_BYTES
        assert units.wire_bytes(46) == 46 + units.ETHERNET_OVERHEAD_BYTES

    def test_above_minimum(self):
        assert units.wire_bytes(100) == 100 + units.ETHERNET_OVERHEAD_BYTES

    def test_rejects_above_mtu(self):
        with pytest.raises(ValueError):
            units.wire_bytes(1501)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wire_bytes(0)


class TestFragmentation:
    def test_single_frame(self):
        assert units.frames_for_payload(800) == [800]

    def test_exact_mtu(self):
        assert units.frames_for_payload(1500) == [1500]

    def test_multi_frame(self):
        assert units.frames_for_payload(3200) == [1500, 1500, 200]

    def test_five_mtu(self):
        assert units.frames_for_payload(5 * 1500) == [1500] * 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.frames_for_payload(0)

    @given(st.integers(min_value=1, max_value=20 * 1500))
    def test_fragments_sum_to_message(self, size):
        assert sum(units.frames_for_payload(size)) == size

    @given(st.integers(min_value=1, max_value=20 * 1500))
    def test_only_last_fragment_partial(self, size):
        frames = units.frames_for_payload(size)
        assert all(f == units.ETHERNET_MTU_BYTES for f in frames[:-1])


class TestRounding:
    def test_ceil_to_multiple(self):
        assert units.ceil_to_multiple(10, 4) == 12
        assert units.ceil_to_multiple(12, 4) == 12
        assert units.ceil_to_multiple(0, 4) == 0

    def test_is_multiple(self):
        assert units.is_multiple(12, 4)
        assert not units.is_multiple(13, 4)

    def test_rejects_bad_unit(self):
        with pytest.raises(ValueError):
            units.ceil_to_multiple(5, 0)
        with pytest.raises(ValueError):
            units.is_multiple(5, -1)

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**6))
    def test_ceil_properties(self, value, unit):
        result = units.ceil_to_multiple(value, unit)
        assert result >= value
        assert result % unit == 0
        assert result - value < unit


class TestHyperperiod:
    def test_lcm(self):
        assert units.lcm(4, 6) == 12
        assert units.lcm(5, 10) == 10

    def test_hyperperiod_of_paper_periods(self):
        ms = units.milliseconds
        assert units.hyperperiod([ms(4), ms(8), ms(16)]) == ms(16)
        assert units.hyperperiod([ms(5), ms(10), ms(20)]) == ms(20)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            units.hyperperiod([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            units.lcm(0, 5)

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=6))
    def test_hyperperiod_divisible_by_all(self, periods):
        h = units.hyperperiod(periods)
        assert all(h % p == 0 for p in periods)


class TestFormat:
    def test_scales(self):
        assert units.format_ns(5) == "5ns"
        assert units.format_ns(1_500) == "1.500us"
        assert units.format_ns(2_500_000) == "2.500ms"
        assert units.format_ns(3_000_000_000) == "3.000s"
