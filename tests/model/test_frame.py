"""Frame model tests: (φ, T, L) instances and periodic interval math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.frame import FrameSlot, FrameVar, build_frame_vars
from repro.model.stream import Priorities, Stream
from repro.model.units import milliseconds


class TestFrameVar:
    def test_var_name_unique_per_identity(self):
        a = FrameVar("s1", ("A", "B"), 0, 1000, 10)
        b = FrameVar("s1", ("A", "B"), 1, 1000, 10)
        c = FrameVar("s1", ("B", "C"), 0, 1000, 10)
        assert len({a.var_name, b.var_name, c.var_name}) == 3

    def test_rejects_frame_larger_than_period(self):
        with pytest.raises(ValueError):
            FrameVar("s", ("A", "B"), 0, period_ns=5, duration_ns=10)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            FrameVar("s", ("A", "B"), -1, 100, 10)

    def test_scheduled_binds_offset(self):
        fv = FrameVar("s", ("A", "B"), 2, 1000, 10, extra=True)
        slot = fv.scheduled(40)
        assert slot.offset_ns == 40
        assert slot.end_ns == 50
        assert slot.extra


class TestFrameSlot:
    def test_occurrences(self):
        slot = FrameSlot("s", ("A", "B"), 0, offset_ns=10, period_ns=100, duration_ns=5)
        assert slot.occurrence(0) == (10, 15)
        assert slot.occurrence(3) == (310, 315)
        assert slot.occurrences_until(250) == [(10, 15), (110, 115), (210, 215)]

    def test_overlaps_same_phase(self):
        a = FrameSlot("a", ("A", "B"), 0, 10, 100, 5)
        b = FrameSlot("b", ("A", "B"), 0, 12, 100, 5)
        assert a.overlaps(b, 100)

    def test_no_overlap_disjoint(self):
        a = FrameSlot("a", ("A", "B"), 0, 10, 100, 5)
        b = FrameSlot("b", ("A", "B"), 0, 20, 100, 5)
        assert not a.overlaps(b, 100)

    def test_overlap_across_periods(self):
        # b at 110 collides with a's second occurrence at 110.
        a = FrameSlot("a", ("A", "B"), 0, 10, 100, 5)
        b = FrameSlot("b", ("A", "B"), 0, 112, 200, 5)
        assert a.overlaps(b, 200)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            FrameSlot("s", ("A", "B"), 0, -1, 100, 5)


class TestBuildFrameVars:
    def _stream(self, topo, length_bytes):
        return Stream(
            name="s", path=tuple(topo.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=length_bytes, period_ns=milliseconds(4),
        )

    def test_base_frames(self, star_topology):
        s = self._stream(star_topology, 2 * 1500)
        link = s.path[0]
        frames = build_frame_vars(s, link, 2)
        assert len(frames) == 2
        assert not any(f.extra for f in frames)
        assert all(f.duration_ns == 123_040 for f in frames)

    def test_extra_frames_marked(self, star_topology):
        s = self._stream(star_topology, 1500)
        link = s.path[0]
        frames = build_frame_vars(s, link, 3)
        assert [f.extra for f in frames] == [False, True, True]

    def test_extra_frames_sized_like_largest(self, star_topology):
        s = self._stream(star_topology, 1700)  # 1500 + 200
        link = s.path[0]
        frames = build_frame_vars(s, link, 3)
        assert frames[0].duration_ns == 123_040
        assert frames[1].duration_ns < frames[0].duration_ns  # 200 B + padding
        assert frames[2].duration_ns == 123_040  # extra = max frame

    def test_duration_rounded_to_time_unit(self):
        from repro.model.topology import Topology

        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        topo.add_device("D3")
        topo.add_link("D1", "SW1", time_unit_ns=1000)
        topo.add_link("D3", "SW1", time_unit_ns=1000)
        s = self._stream(topo, 1500)
        frames = build_frame_vars(s, s.path[0], 1)
        assert frames[0].duration_ns == 124_000  # 123_040 ceil to 1 us

    def test_count_below_message_rejected(self, star_topology):
        s = self._stream(star_topology, 2 * 1500)
        with pytest.raises(ValueError):
            build_frame_vars(s, s.path[0], 1)


class TestPeriodicOverlapProperty:
    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        st.sampled_from([10, 20, 30, 60]),
        st.sampled_from([10, 20, 30, 60]),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
    )
    def test_overlaps_matches_brute_force(self, oa, ob, ta, tb, la, lb):
        from math import gcd

        from repro.core.schedule import periodic_overlap

        la = min(la, ta)
        lb = min(lb, tb)
        a = FrameSlot("a", ("A", "B"), 0, oa % ta, ta, la)
        b = FrameSlot("b", ("A", "B"), 0, ob % tb, tb, lb)
        hyper = ta * tb // gcd(ta, tb)
        brute = a.overlaps(b, 2 * hyper)
        fast = periodic_overlap(a.offset_ns, la, ta, b.offset_ns, lb, tb)
        assert brute == fast
