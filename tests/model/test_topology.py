"""Topology graph and routing tests."""

import pytest

from repro.model.topology import (
    Link,
    Node,
    NodeKind,
    Topology,
    TopologyError,
    line_topology,
)
from repro.model.units import MBPS_100


class TestNodes:
    def test_switch_and_device_kinds(self):
        assert Node("SW1", NodeKind.SWITCH).is_switch
        assert not Node("D1", NodeKind.DEVICE).is_switch

    def test_rejects_empty_name(self):
        with pytest.raises(TopologyError):
            Node("", NodeKind.DEVICE)

    def test_rejects_unknown_kind(self):
        with pytest.raises(TopologyError):
            Node("X", "router")

    def test_reregistering_same_kind_is_idempotent(self):
        topo = Topology()
        a = topo.add_switch("SW1")
        b = topo.add_switch("SW1")
        assert a is b

    def test_reregistering_different_kind_fails(self):
        topo = Topology()
        topo.add_switch("SW1")
        with pytest.raises(TopologyError):
            topo.add_device("SW1")


class TestLinks:
    def test_full_duplex_creates_both_directions(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        forward, backward = topo.add_link("D1", "SW1")
        assert forward.key == ("D1", "SW1")
        assert backward.key == ("SW1", "D1")
        assert topo.has_link("D1", "SW1") and topo.has_link("SW1", "D1")

    def test_link_attributes(self):
        link = Link("A", "B", bandwidth_bps=MBPS_100, propagation_ns=500, time_unit_ns=8)
        assert link.bandwidth_bps == MBPS_100
        assert link.propagation_ns == 500
        assert link.time_unit_ns == 8

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link("A", "A")

    def test_rejects_bad_attributes(self):
        with pytest.raises(TopologyError):
            Link("A", "B", bandwidth_bps=0)
        with pytest.raises(TopologyError):
            Link("A", "B", propagation_ns=-1)
        with pytest.raises(TopologyError):
            Link("A", "B", time_unit_ns=0)

    def test_rejects_duplicate_link(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        topo.add_link("D1", "SW1")
        with pytest.raises(TopologyError):
            topo.add_link("D1", "SW1")

    def test_rejects_unknown_endpoint(self):
        topo = Topology()
        topo.add_switch("SW1")
        with pytest.raises(TopologyError):
            topo.add_link("D9", "SW1")

    def test_transmission_time(self):
        link = Link("A", "B", bandwidth_bps=MBPS_100)
        assert link.transmission_ns(1538) == 123_040

    def test_egress_links(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        topo.add_device("D2")
        topo.add_link("SW1", "D1")
        topo.add_link("SW1", "D2")
        assert {l.dst for l in topo.egress_links("SW1")} == {"D1", "D2"}


class TestRouting:
    def test_one_hop(self, star_topology):
        path = star_topology.shortest_path("D1", "SW1")
        assert [l.key for l in path] == [("D1", "SW1")]

    def test_two_hops_through_switch(self, star_topology):
        path = star_topology.shortest_path("D1", "D3")
        assert [l.key for l in path] == [("D1", "SW1"), ("SW1", "D3")]

    def test_three_hops_testbed(self, two_switch_topology):
        path = two_switch_topology.shortest_path("D2", "D4")
        assert [l.key for l in path] == [
            ("D2", "SW1"), ("SW1", "SW2"), ("SW2", "D4"),
        ]

    def test_devices_do_not_forward(self):
        # D1 - D2 - D3 as a device chain has no route D1 -> D3.
        topo = Topology()
        for d in ("D1", "D2", "D3"):
            topo.add_device(d)
        topo.add_link("D1", "D2")
        topo.add_link("D2", "D3")
        with pytest.raises(TopologyError):
            topo.shortest_path("D1", "D3")

    def test_no_route(self):
        topo = Topology()
        topo.add_device("D1")
        topo.add_device("D2")
        topo.add_switch("SW1")
        topo.add_link("D1", "SW1")
        topo.add_link("D2", "SW1")
        topo.add_switch("SW2")
        topo.add_device("D3")
        topo.add_link("D3", "SW2")
        with pytest.raises(TopologyError):
            topo.shortest_path("D1", "D3")

    def test_same_endpoint_rejected(self, star_topology):
        with pytest.raises(TopologyError):
            star_topology.shortest_path("D1", "D1")

    def test_unknown_node_rejected(self, star_topology):
        with pytest.raises(TopologyError):
            star_topology.shortest_path("D1", "D99")

    def test_route_is_contiguous_and_shortest(self, two_switch_topology):
        path = two_switch_topology.shortest_path("D1", "D3")
        for a, b in zip(path, path[1:]):
            assert a.dst == b.src
        assert len(path) == 3


class TestDerived:
    def test_macrotick_lcm(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        topo.add_device("D2")
        topo.add_link("D1", "SW1", time_unit_ns=4)
        topo.add_link("D2", "SW1", time_unit_ns=6)
        assert topo.macrotick_ns() == 12

    def test_macrotick_requires_links(self):
        with pytest.raises(TopologyError):
            Topology().macrotick_ns()

    def test_validate_rejects_isolated(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("D1")
        topo.add_device("D2")
        topo.add_link("D1", "SW1")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_validate_ok(self, star_topology):
        star_topology.validate()

    def test_describe_mentions_everything(self, star_topology):
        text = star_topology.describe()
        for name in ("SW1", "D1", "D2", "D3"):
            assert name in text

    def test_contains_and_iter(self, star_topology):
        assert "SW1" in star_topology
        assert "XX" not in star_topology
        assert {n.name for n in star_topology} == {"SW1", "D1", "D2", "D3"}


class TestLineTopology:
    def test_shape(self):
        topo = line_topology(["D1", "D2", "D3", "D4"], ["SW1", "SW2"])
        assert len(topo.switches) == 2
        assert len(topo.devices) == 4
        # first half on SW1, second half on SW2
        assert topo.has_link("D1", "SW1")
        assert topo.has_link("D3", "SW2")
        path = topo.shortest_path("D1", "D4")
        assert len(path) == 3

    def test_requires_both_kinds(self):
        with pytest.raises(TopologyError):
            line_topology([], ["SW1"])
        with pytest.raises(TopologyError):
            line_topology(["D1"], [])
