"""Stream model tests: the 8-attribute tuple, priorities, overlap rules."""

import pytest

from repro.model.stream import (
    EctStream,
    Priorities,
    Stream,
    StreamError,
    StreamType,
    TctRequirement,
    may_overlap,
    streams_by_link,
)
from repro.model.units import milliseconds


def _path(topo, src, dst):
    return tuple(topo.shortest_path(src, dst))


class TestStreamValidation:
    def test_valid_tct(self, star_topology):
        s = Stream(
            name="s", path=_path(star_topology, "D1", "D3"),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=100, period_ns=milliseconds(4),
        )
        assert s.source == "D1" and s.destination == "D3"
        assert s.type == StreamType.DET

    def test_rejects_empty_name(self, star_topology):
        with pytest.raises(StreamError):
            Stream(name="", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=1, priority=1, length_bytes=1, period_ns=10)

    def test_rejects_empty_path(self):
        with pytest.raises(StreamError):
            Stream(name="s", path=(), e2e_ns=1, priority=1,
                   length_bytes=1, period_ns=10)

    def test_rejects_discontiguous_path(self, two_switch_topology):
        a = two_switch_topology.link("D1", "SW1")
        b = two_switch_topology.link("SW2", "D3")
        with pytest.raises(StreamError):
            Stream(name="s", path=(a, b), e2e_ns=1, priority=1,
                   length_bytes=1, period_ns=10)

    @pytest.mark.parametrize("field,value", [
        ("e2e_ns", 0), ("length_bytes", 0), ("period_ns", -5), ("priority", 9),
    ])
    def test_rejects_bad_scalars(self, star_topology, field, value):
        kwargs = dict(
            name="s", path=_path(star_topology, "D1", "D3"),
            e2e_ns=milliseconds(1), priority=Priorities.NSH_PL,
            length_bytes=64, period_ns=milliseconds(1),
        )
        kwargs[field] = value
        with pytest.raises(StreamError):
            Stream(**kwargs)

    def test_prob_requires_parent(self, star_topology):
        with pytest.raises(StreamError):
            Stream(name="p", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=100, priority=Priorities.EP, length_bytes=64,
                   period_ns=1000, type=StreamType.PROB, occurrence_ns=0)

    def test_prob_occurrence_inside_period(self, star_topology):
        with pytest.raises(StreamError):
            Stream(name="p", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=100, priority=Priorities.EP, length_bytes=64,
                   period_ns=1000, type=StreamType.PROB, occurrence_ns=1000,
                   parent="e")

    def test_det_cannot_have_occurrence(self, star_topology):
        with pytest.raises(StreamError):
            Stream(name="s", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=100, priority=Priorities.NSH_PL, length_bytes=64,
                   period_ns=1000, occurrence_ns=5)

    def test_prob_cannot_share(self, star_topology):
        with pytest.raises(StreamError):
            Stream(name="p", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=100, priority=Priorities.EP, length_bytes=64,
                   period_ns=1000, type=StreamType.PROB, parent="e", share=True)


class TestFraming:
    def test_single_frame_message(self, simple_tct):
        assert simple_tct.frames_per_period() == 1
        assert simple_tct.frame_payloads() == [400]

    def test_multi_frame_message(self, star_topology):
        s = Stream(name="s", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=milliseconds(5), priority=Priorities.NSH_PL,
                   length_bytes=3 * 1500, period_ns=milliseconds(5))
        assert s.frames_per_period() == 3

    def test_transmission_time_sums_frames(self, star_topology):
        link = star_topology.link("D1", "SW1")
        s = Stream(name="s", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=milliseconds(5), priority=Priorities.NSH_PL,
                   length_bytes=2 * 1500, period_ns=milliseconds(5))
        assert s.transmission_ns(link) == 2 * 123_040

    def test_with_share_copies(self, simple_tct):
        shared = simple_tct.with_share(True)
        assert shared.share and not simple_tct.share
        assert shared.name == simple_tct.name


class TestPriorities:
    def test_partition_is_consistent(self):
        assert Priorities.EP == 7
        assert Priorities.SH_PH < Priorities.EP
        assert Priorities.NSH_PH < Priorities.SH_PL
        assert Priorities.BE < Priorities.NSH_PL

    def test_check_prob_priority(self, star_topology):
        good = Stream(name="p", path=_path(star_topology, "D2", "D3"),
                      e2e_ns=100, priority=Priorities.EP, length_bytes=64,
                      period_ns=1000, type=StreamType.PROB, parent="e")
        Priorities.check(good)

    def test_check_rejects_prob_wrong_priority(self, star_topology):
        bad = Stream(name="p", path=_path(star_topology, "D2", "D3"),
                     e2e_ns=100, priority=5, length_bytes=64,
                     period_ns=1000, type=StreamType.PROB, parent="e")
        with pytest.raises(StreamError):
            Priorities.check(bad)

    def test_check_shared_band(self, star_topology):
        s = Stream(name="s", path=_path(star_topology, "D1", "D3"),
                   e2e_ns=100, priority=Priorities.SH_PL, length_bytes=64,
                   period_ns=1000, share=True)
        Priorities.check(s)
        with pytest.raises(StreamError):
            Priorities.check(s.with_share(False))

    def test_check_nonshared_band(self, simple_tct):
        Priorities.check(simple_tct)
        with pytest.raises(StreamError):
            Priorities.check(simple_tct.with_share(True))


class TestTctRequirement:
    def test_resolve_routes_and_defaults(self, two_switch_topology):
        req = TctRequirement("r1", "D1", "D4", period_ns=milliseconds(8),
                             length_bytes=200)
        s = req.resolve(two_switch_topology)
        assert s.source == "D1" and s.destination == "D4"
        assert s.e2e_ns == milliseconds(8)  # implicit deadline
        assert len(s.path) == 3

    def test_resolve_explicit_deadline(self, two_switch_topology):
        req = TctRequirement("r1", "D1", "D4", period_ns=milliseconds(8),
                             length_bytes=200, e2e_ns=milliseconds(2))
        assert req.resolve(two_switch_topology).e2e_ns == milliseconds(2)

    def test_resolve_checks_priority(self, two_switch_topology):
        req = TctRequirement("r1", "D1", "D4", period_ns=milliseconds(8),
                             length_bytes=200, share=True,
                             priority=Priorities.NSH_PL)
        with pytest.raises(StreamError):
            req.resolve(two_switch_topology)


class TestEctStream:
    def test_defaults(self):
        e = EctStream("e", "D1", "D2", min_interevent_ns=milliseconds(16),
                      length_bytes=1500)
        assert e.effective_e2e_ns == milliseconds(16)
        assert e.possibilities == 8

    def test_explicit_deadline(self):
        e = EctStream("e", "D1", "D2", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, e2e_ns=milliseconds(8))
        assert e.effective_e2e_ns == milliseconds(8)

    @pytest.mark.parametrize("kwargs", [
        dict(min_interevent_ns=0),
        dict(length_bytes=0),
        dict(possibilities=0),
        dict(e2e_ns=0),
    ])
    def test_rejects_bad_values(self, kwargs):
        base = dict(name="e", source="D1", destination="D2",
                    min_interevent_ns=1000, length_bytes=100)
        base.update(kwargs)
        with pytest.raises(StreamError):
            EctStream(**base)

    def test_route(self, two_switch_topology):
        e = EctStream("e", "D2", "D4", min_interevent_ns=milliseconds(16),
                      length_bytes=1500)
        path = e.route(two_switch_topology)
        assert len(path) == 3


class TestOverlapRules:
    def _prob(self, topo, name, parent):
        return Stream(name=name, path=_path(topo, "D2", "D3"),
                      e2e_ns=900, priority=Priorities.EP, length_bytes=64,
                      period_ns=1000, type=StreamType.PROB, parent=parent)

    def _det(self, topo, name, share):
        priority = Priorities.SH_PL if share else Priorities.NSH_PL
        return Stream(name=name, path=_path(topo, "D1", "D3"),
                      e2e_ns=1000, priority=priority, length_bytes=64,
                      period_ns=1000, share=share)

    def test_same_parent_possibilities_overlap(self, star_topology):
        a = self._prob(star_topology, "p1", "e1")
        b = self._prob(star_topology, "p2", "e1")
        assert may_overlap(a, b)

    def test_different_parents_do_not(self, star_topology):
        a = self._prob(star_topology, "p1", "e1")
        b = self._prob(star_topology, "p2", "e2")
        assert not may_overlap(a, b)

    def test_prob_with_shared_tct(self, star_topology):
        p = self._prob(star_topology, "p1", "e1")
        shared = self._det(star_topology, "t1", share=True)
        assert may_overlap(p, shared)
        assert may_overlap(shared, p)

    def test_prob_with_nonshared_tct(self, star_topology):
        p = self._prob(star_topology, "p1", "e1")
        plain = self._det(star_topology, "t1", share=False)
        assert not may_overlap(p, plain)

    def test_det_never_overlap(self, star_topology):
        a = self._det(star_topology, "t1", share=True)
        b = self._det(star_topology, "t2", share=True)
        assert not may_overlap(a, b)


class TestIndex:
    def test_streams_by_link(self, star_topology, simple_tct):
        other = Stream(name="b", path=_path(star_topology, "D2", "D3"),
                       e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
                       length_bytes=64, period_ns=milliseconds(4))
        index = streams_by_link([simple_tct, other])
        assert {s.name for s in index[("SW1", "D3")]} == {"tct-a", "b"}
        assert [s.name for s in index[("D1", "SW1")]] == ["tct-a"]
