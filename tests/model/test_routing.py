"""k-shortest and disjoint-path routing tests."""

import pytest

from repro.model.routing import disjoint_paths, k_shortest_paths, least_loaded_path
from repro.model.topology import Topology, TopologyError


def _ring_topology():
    """Dual-homed devices on a 4-switch ring: two disjoint routes exist."""
    topo = Topology()
    switches = ["SW1", "SW2", "SW3", "SW4"]
    for s in switches:
        topo.add_switch(s)
    for a, b in zip(switches, switches[1:] + switches[:1]):
        topo.add_link(a, b)
    topo.add_device("A")
    topo.add_link("A", "SW1")
    topo.add_link("A", "SW3")  # dual-homed talker
    topo.add_device("B")
    topo.add_link("B", "SW2")
    topo.add_link("B", "SW4")  # dual-homed listener
    return topo


class TestKShortest:
    def test_first_is_shortest(self, two_switch_topology):
        paths = k_shortest_paths(two_switch_topology, "D1", "D4", 3)
        assert len(paths[0]) == 3
        assert [l.key for l in paths[0]] == \
            [l.key for l in two_switch_topology.shortest_path("D1", "D4")]

    def test_tree_topology_has_single_path(self, two_switch_topology):
        paths = k_shortest_paths(two_switch_topology, "D1", "D4", 5)
        assert len(paths) == 1  # no alternative routes in a tree

    def test_ring_offers_alternatives(self):
        topo = _ring_topology()
        paths = k_shortest_paths(topo, "A", "B", 4)
        assert len(paths) >= 2
        # non-decreasing hop counts, all distinct, all valid
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        keys = {tuple(l.key for l in p) for p in paths}
        assert len(keys) == len(paths)
        for path in paths:
            assert path[0].src == "A" and path[-1].dst == "B"
            for a, b in zip(path, path[1:]):
                assert a.dst == b.src

    def test_loop_free(self):
        topo = _ring_topology()
        for path in k_shortest_paths(topo, "A", "B", 6):
            nodes = [path[0].src] + [l.dst for l in path]
            assert len(nodes) == len(set(nodes))

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_switch("SW2")
        topo.add_device("A")
        topo.add_device("B")
        topo.add_link("A", "SW1")
        topo.add_link("B", "SW2")
        with pytest.raises(TopologyError):
            k_shortest_paths(topo, "A", "B", 2)

    def test_bad_k(self, two_switch_topology):
        with pytest.raises(ValueError):
            k_shortest_paths(two_switch_topology, "D1", "D4", 0)


class TestDisjoint:
    def test_ring_gives_two_disjoint(self):
        topo = _ring_topology()
        paths = disjoint_paths(topo, "A", "B", 2)
        assert len(paths) == 2
        used = set()
        for path in paths:
            for link in path:
                assert link.key not in used
                assert (link.dst, link.src) not in used
                used.add(link.key)

    def test_tree_gives_only_one(self, two_switch_topology):
        paths = disjoint_paths(two_switch_topology, "D1", "D4", 2)
        assert len(paths) == 1

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_switch("SW1")
        topo.add_device("A")
        topo.add_device("B")
        topo.add_link("A", "SW1")
        topo.add_switch("SW2")
        topo.add_link("B", "SW2")
        with pytest.raises(TopologyError):
            disjoint_paths(topo, "A", "B")

    def test_bad_count(self, two_switch_topology):
        with pytest.raises(ValueError):
            disjoint_paths(two_switch_topology, "D1", "D4", 0)


class TestLeastLoaded:
    def test_picks_coolest_bottleneck(self):
        topo = _ring_topology()
        paths = k_shortest_paths(topo, "A", "B", 3)
        # heat a link that is NOT on every candidate (alternatives may
        # share the first hop on a dual-homed ring)
        all_keys = [set(l.key for l in p) for p in paths]
        only_first = set.union(*all_keys[:1]) - set.union(*all_keys[1:])
        assert only_first, "need a link unique to the first path"
        hot_key = next(iter(only_first))
        chosen = least_loaded_path(paths, {hot_key: 0.9})
        assert hot_key not in {l.key for l in chosen}

    def test_ties_break_by_length(self):
        topo = _ring_topology()
        paths = k_shortest_paths(topo, "A", "B", 2)
        chosen = least_loaded_path(paths, {})
        assert len(chosen) == min(len(p) for p in paths)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            least_loaded_path([], {})
