"""Property test: the formal ECT guarantee holds in simulation.

For random feasible scenarios, the ``etsn-strict`` GCL (the literal
realization of the reservation analysis) must deliver every event within
``schedule.ect_guarantee_ns()``, for any event pattern; the default
``etsn`` GCL must, too (it is a superset of transmission opportunities).
TCT deadlines must hold simultaneously when frame sizes satisfy the
paper-mode reservation assumption (TCT frames >= ECT frames).

This exercises the scheduler, the validator, GCL synthesis, the port
model, and the analysis bound against each other end to end.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines import schedule_etsn
from repro.core.gcl import build_gcl
from repro.core.schedule import InfeasibleError
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.topology import Topology
from repro.model.units import milliseconds
from repro.sim import SimConfig, TsnSimulation

DURATION = milliseconds(400)


def _topology():
    topo = Topology()
    topo.add_switch("SW1")
    topo.add_switch("SW2")
    for device, switch in (("D1", "SW1"), ("D2", "SW1"),
                           ("D3", "SW2"), ("D4", "SW2")):
        topo.add_device(device)
        topo.add_link(device, switch)
    topo.add_link("SW1", "SW2")
    return topo


DEVICES = ["D1", "D2", "D3", "D4"]


@st.composite
def scenario(draw):
    topo = _topology()
    streams = []
    for i in range(draw(st.integers(0, 3))):
        src = draw(st.sampled_from(DEVICES))
        dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
        period = draw(st.sampled_from([milliseconds(4), milliseconds(8)]))
        # paper-mode reservation assumes TCT frames >= ECT frames: use
        # MTU multiples so the assumption holds
        length = 1500 * draw(st.integers(1, 2))
        streams.append(Stream(
            name=f"t{i}", path=tuple(topo.shortest_path(src, dst)),
            e2e_ns=period, priority=Priorities.SH_PL, length_bytes=length,
            period_ns=period, share=True,
        ))
    src = draw(st.sampled_from(DEVICES))
    dst = draw(st.sampled_from([d for d in DEVICES if d != src]))
    ect = EctStream(
        name="e", source=src, destination=dst,
        min_interevent_ns=milliseconds(16), length_bytes=1500,
        possibilities=draw(st.sampled_from([2, 4, 8])),
    )
    seed = draw(st.integers(0, 2**16))
    return topo, streams, ect, seed


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario())
def test_guarantee_holds_in_simulation(case):
    topo, streams, ect, seed = case
    try:
        schedule = schedule_etsn(topo, streams, [ect])
    except InfeasibleError:
        return
    bound = schedule.ect_guarantee_ns("e")
    # the Eq.-level analysis promises <= e2e; the blocking term (which
    # the paper omits) can push the honest bound slightly past it
    assert bound < ect.effective_e2e_ns + milliseconds(1)
    for mode in ("etsn-strict", "etsn"):
        gcl = build_gcl(schedule, mode=mode)
        report = TsnSimulation(
            schedule, gcl, SimConfig(duration_ns=DURATION, seed=seed),
        ).run()
        stats = report.recorder.stats("e")
        assert stats.maximum_ns <= bound, (mode, stats.maximum_ns, bound)
        # TCT deadlines hold alongside
        for stream in streams:
            tct_stats = report.recorder.stats(stream.name)
            assert tct_stats.maximum_ns <= stream.e2e_ns, (mode, stream.name)
        # nothing is lost in a fault-free network
        assert report.recorder.in_flight() == 0
