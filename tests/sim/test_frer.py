"""FRER (802.1CB-style seamless redundancy) tests."""

import pytest

from repro.core.frer import frer_guarantee_ns, plan_frer, schedule_etsn_frer
from repro.core.gcl import build_gcl
from repro.core.schedule import validate
from repro.model.stream import EctStream, Priorities, Stream, StreamError
from repro.model.topology import Topology
from repro.model.units import milliseconds
from repro.sim import SimConfig, TsnSimulation

DURATION = milliseconds(600)


def _ring_topology():
    topo = Topology()
    switches = ["SW1", "SW2", "SW3", "SW4"]
    for s in switches:
        topo.add_switch(s)
    for a, b in zip(switches, switches[1:] + switches[:1]):
        topo.add_link(a, b)
    topo.add_device("A")
    topo.add_link("A", "SW1")
    topo.add_link("A", "SW3")
    topo.add_device("B")
    topo.add_link("B", "SW2")
    topo.add_link("B", "SW4")
    return topo


def _ect():
    return EctStream("safety", "A", "B", min_interevent_ns=milliseconds(16),
                     length_bytes=1500, possibilities=4)


def _tct(topo):
    return Stream(
        name="loop", path=tuple(topo.shortest_path("A", "B")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=1500, period_ns=milliseconds(4), share=True,
    )


class TestPlanning:
    def test_members_on_disjoint_paths(self):
        topo = _ring_topology()
        members = plan_frer(topo, _ect())
        assert [m.name for m in members] == ["safety@1", "safety@2"]
        used = set()
        for member in members:
            for link in member.route(topo):
                assert link.key not in used
                used.add(link.key)
                used.add((link.dst, link.src))

    def test_single_homed_talker_rejected(self, two_switch_topology):
        ect = EctStream("e", "D1", "D4", min_interevent_ns=milliseconds(16),
                        length_bytes=1500, possibilities=4)
        with pytest.raises(StreamError):
            plan_frer(two_switch_topology, ect)

    def test_needs_two_paths_minimum(self):
        with pytest.raises(ValueError):
            plan_frer(_ring_topology(), _ect(), num_paths=1)


class TestScheduling:
    def test_schedule_validates_with_members(self):
        topo = _ring_topology()
        schedule = schedule_etsn_frer(topo, [_tct(topo)], [_ect()])
        validate(schedule)
        assert schedule.meta["frer_members"] == {
            "safety@1": "safety", "safety@2": "safety",
        }
        # each member has its own possibilities
        parents = {s.parent for s in schedule.probabilistic_streams()}
        assert parents == {"safety@1", "safety@2"}

    def test_logical_guarantee(self):
        topo = _ring_topology()
        schedule = schedule_etsn_frer(topo, [_tct(topo)], [_ect()])
        bound = frer_guarantee_ns(schedule, "safety")
        assert bound >= max(
            schedule.ect_guarantee_ns(m) for m in ("safety@1", "safety@2")
        ) - 1
        with pytest.raises(KeyError):
            frer_guarantee_ns(schedule, "ghost")


class TestRuntime:
    def _run(self, link_loss=None, down_link=None):
        topo = _ring_topology()
        schedule = schedule_etsn_frer(topo, [_tct(topo)], [_ect()])
        gcl = build_gcl(schedule, mode="etsn")
        loss = dict(link_loss or {})
        if down_link:
            loss[down_link] = 1.0
        sim = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=5, link_loss=loss))
        return schedule, sim, sim.run()

    def test_duplicates_eliminated_when_healthy(self):
        _, sim, report = self._run()
        rec = report.recorder
        assert rec.delivered("safety") == rec.injected("safety") > 0
        # the redundant copies arrived and were dropped by elimination
        assert rec.duplicates_eliminated >= rec.delivered("safety")

    def test_latency_is_fastest_copy(self):
        """The logical latency is min over members; it must be no worse
        than running the primary member alone."""
        topo = _ring_topology()
        schedule = schedule_etsn_frer(topo, [_tct(topo)], [_ect()])
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=5)).run()
        assert (report.recorder.stats("safety").maximum_ns
                <= frer_guarantee_ns(schedule, "safety"))

    def test_survives_total_path_failure(self):
        """Killing one member's first link loses nothing: the other copy
        arrives for every event."""
        topo = _ring_topology()
        schedule = schedule_etsn_frer(topo, [_tct(topo)], [_ect()])
        member_path = next(
            e.route(topo) for e in schedule.ect_streams if e.name == "safety@1"
        )
        dead = member_path[1].key  # a backbone hop of member 1
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=5, link_loss={dead: 1.0})).run()
        rec = report.recorder
        assert rec.delivered("safety") == rec.injected("safety") > 0
        assert report.frames_lost > 0  # the dead path really dropped copies

    def test_without_frer_the_same_failure_loses_events(self):
        topo = _ring_topology()
        from repro.core.baselines import schedule_etsn

        ect = _ect()
        schedule = schedule_etsn(topo, [_tct(topo)], [ect])
        path = ect.route(topo)
        dead = path[1].key
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=5, link_loss={dead: 1.0})).run()
        rec = report.recorder
        assert rec.lost("safety") == rec.injected("safety") > 0
