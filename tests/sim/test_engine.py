"""Event-loop engine tests."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.at(30, lambda: fired.append(30))
        sim.at(10, lambda: fired.append(10))
        sim.at(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10, 20, 30]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.at(100, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: seen.append(sim.now))
        sim.at(25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10, 25]

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        def chain():
            seen.append(sim.now)
            if len(seen) < 3:
                sim.after(5, chain)
        sim.at(10, chain)
        sim.run()
        assert seen == [10, 15, 20]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(10, lambda: sim.at(5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: fired.append(10))
        sim.at(50, lambda: fired.append(50))
        sim.run_until(30)
        assert fired == [10]
        assert sim.now == 30
        assert sim.pending() == 1

    def test_resume_after_horizon(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: fired.append(10))
        sim.at(50, lambda: fired.append(50))
        sim.run_until(30)
        sim.run_until(100)
        assert fired == [10, 50]

    def test_event_at_horizon_included(self):
        sim = Simulator()
        fired = []
        sim.at(30, lambda: fired.append(30))
        sim.run_until(30)
        assert fired == [30]

    def test_self_rescheduling_source_is_bounded(self):
        sim = Simulator()
        count = [0]
        def tick():
            count[0] += 1
            sim.after(10, tick)
        sim.at(0, tick)
        sim.run_until(95)
        assert count[0] == 10  # t = 0, 10, ..., 90

    def test_reentrancy_rejected(self):
        sim = Simulator()
        sim.at(1, lambda: sim.run())
        with pytest.raises(SimulationError):
            sim.run()

    def test_counts_events(self):
        sim = Simulator()
        for t in range(7):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.num_events == 7
