"""Credit-based shaper (802.1Qav) tests."""

import pytest

from repro.sim.cbs import CreditBasedShaper
from repro.model.units import MBPS_100

IDLE = MBPS_100 // 2  # 50 Mb/s class


class TestConstruction:
    def test_send_slope(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        assert cbs.send_slope_bps == IDLE - MBPS_100

    def test_rejects_bad_slopes(self):
        with pytest.raises(ValueError):
            CreditBasedShaper(0, MBPS_100)
        with pytest.raises(ValueError):
            CreditBasedShaper(MBPS_100 + 1, MBPS_100)


class TestSemantics:
    def test_initial_credit_allows_send(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        assert cbs.can_send(0)

    def test_transmission_drains_credit(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 1000)
        assert not cbs.can_send(1000)

    def test_credit_regains_while_waiting(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 1000)
        cbs.on_wait_start(1000)
        eligible = cbs.eligible_at(1000)
        # sendSlope = -50 Mb/s for 1000 ns -> deficit; idleSlope = +50 Mb/s
        # so recovery takes exactly as long as the transmission did
        assert eligible == 2000
        assert cbs.can_send(2000)

    def test_no_gain_when_not_waiting(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 1000)
        # no on_wait_start: queue empty, credit frozen (then reset rule)
        assert not cbs.can_send(1500)

    def test_queue_empty_resets_positive_credit(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_wait_start(0)
        assert cbs.credit_bits(1000) > 0  # gained while blocked
        cbs.on_queue_empty(1000)
        assert cbs.credit_bits(1000) == 0

    def test_queue_empty_keeps_negative_credit(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 1000)
        cbs.on_queue_empty(1000)
        assert cbs.credit_bits(1000) < 0

    def test_eligible_at_is_exact_zero_crossing(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 2000)
        cbs.on_wait_start(2000)
        t = cbs.eligible_at(2000)
        # query strictly forward in time: CBS state advances monotonically
        assert not cbs.can_send(t - 2)
        assert cbs.can_send(t)

    def test_long_term_rate_is_bounded_by_idle_slope(self):
        """Back-to-back saturation: the shaper enforces the class rate."""
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        now = 0
        sent_ns = 0
        frame_ns = 1230  # some frame wire time
        for _ in range(200):
            if not cbs.can_send(now):
                now = cbs.eligible_at(now)
            cbs.on_transmit(now, frame_ns)
            sent_ns += frame_ns
            now += frame_ns
            cbs.on_wait_start(now)
        # busy fraction approaches idleSlope / linkRate = 0.5
        assert sent_ns / now == pytest.approx(0.5, rel=0.05)


class TestEmptyQueueRecovery:
    """802.1Q Annex L: a deficit recovers toward zero while the queue is
    empty, saturating at zero — the next burst starts unhandicapped but
    never with banked credit."""

    def test_deficit_recovers_to_zero_when_empty(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 1000)
        cbs.on_queue_empty(1000)
        assert cbs.credit_bits(1000) < 0
        # deficit halves slope: recovery takes as long as the tx did
        assert cbs.credit_bits(2000) == 0
        assert cbs.can_send(2000)

    def test_recovery_saturates_at_zero(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 1000)
        cbs.on_queue_empty(1000)
        assert cbs.credit_bits(50_000) == 0  # never banks positive credit

    def test_next_event_starts_fresh_after_long_idle(self):
        cbs = CreditBasedShaper(IDLE, MBPS_100)
        cbs.on_transmit(0, 2000)
        cbs.on_queue_empty(2000)
        # a new frame much later: recovered, sendable immediately
        cbs.on_wait_start(100_000)
        assert cbs.can_send(100_000)
