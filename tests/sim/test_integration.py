"""End-to-end guarantees: schedule -> GCL -> simulation must honor the
properties the paper's analysis promises."""

import pytest

from repro.core.baselines import schedule_avb, schedule_etsn, schedule_period
from repro.core.gcl import build_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from repro.sim import SimConfig, SyncConfig, TsnSimulation
from repro.traffic.events import burst_events


def _streams(topo):
    shared = Stream(
        name="sh1", path=tuple(topo.shortest_path("D1", "D4")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=2 * 1500, period_ns=milliseconds(4), share=True,
    )
    nonshared = Stream(
        name="ns1", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(8), priority=Priorities.NSH_PL,
        length_bytes=1500, period_ns=milliseconds(8), share=False,
    )
    ect = EctStream(
        name="e1", source="D2", destination="D4",
        min_interevent_ns=milliseconds(16), length_bytes=1500,
        possibilities=4,
    )
    return [shared, nonshared], [ect]


DURATION = milliseconds(600)


def _run(topo, method, mode, duration=DURATION, **config_kwargs):
    tct, ects = _streams(topo)
    if method == "etsn":
        schedule = schedule_etsn(topo, tct, ects)
    elif method == "period":
        schedule = schedule_period(topo, tct, ects)
    else:
        schedule = schedule_avb(topo, tct, ects)
    gcl = build_gcl(schedule, mode=mode, ect_proxies=schedule.meta.get("ect_proxies"))
    config = SimConfig(duration_ns=duration, seed=3,
                       cbs_on_ect=(mode == "avb"), **config_kwargs)
    sim = TsnSimulation(schedule, gcl, config)
    return schedule, sim.run()


class TestDeliveryCompleteness:
    @pytest.mark.parametrize("method,mode", [
        ("etsn", "etsn"), ("etsn", "etsn-strict"),
        ("period", "period"), ("avb", "avb"),
    ])
    def test_everything_injected_is_delivered(self, two_switch_topology, method, mode):
        _, report = _run(two_switch_topology, method, mode)
        rec = report.recorder
        assert rec.in_flight() == 0
        for stream in ("sh1", "ns1", "e1"):
            assert rec.delivered(stream) == rec.injected(stream) > 0


class TestTctGuarantees:
    def test_tct_deadlines_hold_under_random_ect(self, two_switch_topology):
        schedule, report = _run(two_switch_topology, "etsn", "etsn")
        for name in ("sh1", "ns1"):
            stats = report.recorder.stats(name)
            assert stats.maximum_ns <= schedule.stream(name).e2e_ns

    def test_tct_deadlines_hold_under_worst_case_bursts(self, two_switch_topology):
        """Events at exactly the minimum inter-event time — the case
        prudent reservation budgets for."""
        events = burst_events(
            horizon_ns=DURATION, min_interevent_ns=milliseconds(16),
            burst_size=4, burst_gap_ns=milliseconds(64), seed=2,
        )
        schedule, report = _run(
            two_switch_topology, "etsn", "etsn",
            ect_event_times={"e1": events},
        )
        for name in ("sh1", "ns1"):
            stats = report.recorder.stats(name)
            assert stats.maximum_ns <= schedule.stream(name).e2e_ns

    def test_nonshared_tct_unaffected_by_ect(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects)
        gcl = build_gcl(schedule, mode="etsn")
        quiet = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=3, ect_event_times={"e1": []})).run()
        noisy = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=3)).run()
        q = quiet.recorder.stats("ns1")
        n = noisy.recorder.stats("ns1")
        assert (q.minimum_ns, q.maximum_ns, q.average_ns) == (
            n.minimum_ns, n.maximum_ns, n.average_ns)

    def test_shared_tct_latency_grows_but_stays_bounded(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects)
        gcl = build_gcl(schedule, mode="etsn")
        quiet = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=3, ect_event_times={"e1": []})).run()
        noisy = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=3)).run()
        assert (noisy.recorder.stats("sh1").maximum_ns
                >= quiet.recorder.stats("sh1").maximum_ns)
        assert (noisy.recorder.stats("sh1").maximum_ns
                <= schedule.stream("sh1").e2e_ns)


class TestEctGuarantees:
    def test_etsn_strict_honors_formal_bound(self, two_switch_topology):
        """The reservation-only GCL realizes the analysis: every event is
        delivered within the ECT deadline, no matter when it fires."""
        tct, ects = _streams(two_switch_topology)
        schedule, report = _run(two_switch_topology, "etsn", "etsn-strict")
        assert report.recorder.stats("e1").maximum_ns <= ects[0].effective_e2e_ns

    def test_etsn_runtime_at_least_as_good_as_strict(self, two_switch_topology):
        _, strict = _run(two_switch_topology, "etsn", "etsn-strict")
        _, loose = _run(two_switch_topology, "etsn", "etsn")
        assert (loose.recorder.stats("e1").average_ns
                <= strict.recorder.stats("e1").average_ns)

    def test_period_bounded_by_proxy_period_plus_path(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule, report = _run(two_switch_topology, "period", "period")
        proxy = schedule.stream("e1#period")
        # worst case: wait a full proxy period, then the pipeline
        bound = proxy.period_ns + schedule.scheduled_latency_ns("e1#period")
        assert report.recorder.stats("e1").maximum_ns <= bound

    def test_etsn_beats_baselines_on_jitter(self, two_switch_topology):
        _, etsn = _run(two_switch_topology, "etsn", "etsn")
        _, period = _run(two_switch_topology, "period", "period")
        _, avb = _run(two_switch_topology, "avb", "avb")
        e = etsn.recorder.stats("e1").stddev_ns
        assert e < period.recorder.stats("e1").stddev_ns
        assert e < avb.recorder.stats("e1").stddev_ns


class TestClockSync:
    def test_synced_drifting_clocks_still_meet_deadlines(self, two_switch_topology):
        """With realistic drift (tens of ppm), 802.1AS sync, and a guard
        margin covering the inter-sync error, deadlines hold.

        Back-to-back windows tolerate zero clock error; the guard margin
        is the CNC-side budget for the sync residual plus drift
        accumulation (here <= 10 ns + 31.25 ms * 20 ppm ~ 635 ns)."""
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects,
                                 guard_margin_ns=2_000)
        gcl = build_gcl(schedule, mode="etsn")
        config = SimConfig(
            duration_ns=DURATION, seed=3,
            clock_drift_ppb={"SW1": 20_000, "SW2": -15_000, "D1": 5_000},
            sync=SyncConfig(sync_interval_ns=milliseconds(31.25),
                            residual_error_ns=10),
        )
        report = TsnSimulation(schedule, gcl, config).run()
        assert report.sync_error_ns > 0
        for name in ("sh1", "ns1"):
            stats = report.recorder.stats(name)
            # the schedule (with inflated slots) already bounds latency;
            # allow the clock-error slack on top
            assert stats.maximum_ns <= schedule.stream(name).e2e_ns + 3_000

    def test_unsynced_offset_breaks_timeliness(self, two_switch_topology):
        """Sanity check that clocks matter: a large unsynced offset on a
        switch visibly degrades TCT latency determinism."""
        base_schedule, base = _run(two_switch_topology, "etsn", "etsn",
                                   ect_event_times={"e1": []})
        _, skewed = _run(
            two_switch_topology, "etsn", "etsn",
            ect_event_times={"e1": []},
            clock_offset_ns={"SW1": 200_000},
        )
        assert (skewed.recorder.stats("sh1").maximum_ns
                > base.recorder.stats("sh1").maximum_ns)


class TestReservationSoundness:
    """The reproduction finding about Alg. 1 (see DESIGN.md, finding 3):
    with shared TCT frames shorter than the ECT frame, one event straddles
    several TCT windows; the paper's reservation misses deadlines while
    the robust mode protects them."""

    def _small_frame_setup(self, two_switch_topology, reservation_mode):
        tct = [Stream(
            name="ctrl", path=tuple(two_switch_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(5), priority=Priorities.SH_PL,
            length_bytes=400, period_ns=milliseconds(5), share=True,
        )]
        ects = [EctStream(
            name="alarm", source="D2", destination="D3",
            min_interevent_ns=milliseconds(10), length_bytes=1500,
            possibilities=5,
        )]
        schedule = schedule_etsn(two_switch_topology, tct, ects,
                                 reservation_mode=reservation_mode)
        gcl = build_gcl(schedule, mode="etsn")
        # Aim each event so the alarm frame is being forwarded on
        # SW1->SW2 right when ctrl's window there begins: the 123 us
        # transmission then straddles ctrl's ~36 us base window *and*
        # its extra window(s) if they are equally short.
        link = two_switch_topology.link("D1", "SW1")
        first_hop_ns = link.transmission_ns(1538) + link.propagation_ns
        window = schedule.slots[("ctrl", ("SW1", "SW2"))][0]
        aim = window.offset_ns - first_hop_ns - 10_000
        events = [
            k * milliseconds(10) + (aim % milliseconds(5))
            for k in range(0, int(DURATION // milliseconds(10)) - 1)
        ]
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=4,
            ect_event_times={"alarm": events})).run()
        return schedule, report

    def test_robust_mode_protects_small_frames(self, two_switch_topology):
        schedule, report = self._small_frame_setup(two_switch_topology, "robust")
        stats = report.recorder.stats("ctrl")
        assert stats.maximum_ns <= schedule.stream("ctrl").e2e_ns

    def test_paper_mode_underreserves_small_frames(self, two_switch_topology):
        """Documents the unsoundness: this is expected to *violate* the
        budget under adversarial bursts.  If this test ever fails, the
        paper-mode semantics changed — re-check DESIGN.md finding 3."""
        schedule, report = self._small_frame_setup(two_switch_topology, "paper")
        stats = report.recorder.stats("ctrl")
        assert stats.maximum_ns > schedule.stream("ctrl").e2e_ns

    def test_robust_mode_reserves_more(self, two_switch_topology):
        from repro.core.probabilistic import expand_ect
        from repro.core.reservation import prudent_reservation, total_extra_time_ns

        tct = [Stream(
            name="ctrl", path=tuple(two_switch_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(5), priority=Priorities.SH_PL,
            length_bytes=400, period_ns=milliseconds(5), share=True,
        )]
        ect = EctStream(
            name="alarm", source="D2", destination="D3",
            min_interevent_ns=milliseconds(10), length_bytes=1500,
            possibilities=5,
        )
        streams = tct + expand_ect(ect, two_switch_topology)
        paper = prudent_reservation(streams, mode="paper")
        robust = prudent_reservation(streams, mode="robust")
        assert (total_extra_time_ns(robust, streams)
                > 3 * total_extra_time_ns(paper, streams))


class TestFormalGuarantee:
    """schedule.ect_guarantee_ns() must upper-bound what the strict GCL
    measures, for any occurrence pattern."""

    def test_strict_gcl_realizes_bound(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects)
        bound = schedule.ect_guarantee_ns("e1")
        gcl = build_gcl(schedule, mode="etsn-strict")
        for seed in (1, 2, 3):
            report = TsnSimulation(schedule, gcl, SimConfig(
                duration_ns=DURATION, seed=seed)).run()
            assert report.recorder.stats("e1").maximum_ns <= bound

    def test_loose_gcl_also_within_bound(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects)
        bound = schedule.ect_guarantee_ns("e1")
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(schedule, gcl, SimConfig(
            duration_ns=DURATION, seed=9)).run()
        assert report.recorder.stats("e1").maximum_ns <= bound

    def test_bound_within_deadline(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects)
        assert schedule.ect_guarantee_ns("e1") <= ects[0].effective_e2e_ns

    def test_unknown_ect_raises(self, two_switch_topology):
        tct, ects = _streams(two_switch_topology)
        schedule = schedule_etsn(two_switch_topology, tct, ects)
        with pytest.raises(KeyError):
            schedule.ect_guarantee_ns("ghost")
