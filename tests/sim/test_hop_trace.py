"""Per-hop frame tracing: the simulator's egress ports emit
enqueue/transmit/deliver events that reconstruct each frame's journey —
the raw material of the paper's Fig. 14 per-hop delay analysis."""

from __future__ import annotations

from repro.core.baselines import schedule_etsn
from repro.core.gcl import build_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from repro.obs import Tracer, frame_journeys, per_hop_delays
from repro.sim import SimConfig, TsnSimulation


def _run_traced(topo, duration_ns=milliseconds(100)):
    tct = Stream(
        name="tct-a", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(8), priority=Priorities.NSH_PL,
        length_bytes=1500, period_ns=milliseconds(8),
    )
    ect = EctStream(
        name="ect-a", source="D2", destination="D3",
        min_interevent_ns=milliseconds(16), length_bytes=1500,
        possibilities=4,
    )
    schedule = schedule_etsn(topo, [tct], [ect])
    gcl = build_gcl(schedule, mode="etsn",
                    ect_proxies=schedule.meta.get("ect_proxies"))
    tracer = Tracer(max_spans=100_000)
    config = SimConfig(duration_ns=duration_ns, seed=3, tracer=tracer)
    report = TsnSimulation(schedule, gcl, config).run()
    return report, tracer.spans()


class TestPerHopTracing:
    def test_every_delivered_message_has_a_complete_journey(
        self, star_topology
    ):
        report, spans = _run_traced(star_topology)
        assert report.recorder.delivered("tct-a") > 0
        journeys = frame_journeys(spans, stream="tct-a")
        assert journeys
        # D1 -> SW1 -> D3: every frame crosses both links, and on each
        # link the enqueue/transmit/deliver triple appears in order.
        for steps in journeys.values():
            events = [(event, link) for event, link, _ in steps]
            assert events == [
                ("frame.enqueue", "D1->SW1"),
                ("frame.transmit", "D1->SW1"),
                ("frame.deliver", "D1->SW1"),
                ("frame.enqueue", "SW1->D3"),
                ("frame.transmit", "SW1->D3"),
                ("frame.deliver", "SW1->D3"),
            ]

    def test_timestamps_are_simulated_time_and_monotone(self, star_topology):
        report, spans = _run_traced(star_topology,
                                    duration_ns=milliseconds(50))
        for steps in frame_journeys(spans).values():
            times = [ts for _, _, ts in steps]
            assert times == sorted(times)
            assert all(0 <= ts <= milliseconds(50) for ts in times)

    def test_per_hop_delays_cover_both_links(self, star_topology):
        _, spans = _run_traced(star_topology)
        delays = per_hop_delays(spans, stream="tct-a")
        assert set(delays) == {"D1->SW1", "SW1->D3"}
        # a 1500 B frame takes ~123 us on the wire at 100 Mb/s: every
        # per-hop delay must at least cover its own transmission time.
        for link_delays in delays.values():
            assert all(d >= 120_000 for d in link_delays)

    def test_event_attributes_identify_the_frame(self, star_topology):
        _, spans = _run_traced(star_topology,
                               duration_ns=milliseconds(30))
        frame_events = [s for s in spans if s.name.startswith("frame.")]
        assert frame_events
        for span in frame_events:
            assert span.duration_ns == 0  # point events
            for key in ("frame_id", "stream", "message_id", "frame_index",
                        "link", "hop"):
                assert key in span.attributes, f"{span.name} missing {key}"

    def test_transmit_carries_queue_and_wire_time(self, star_topology):
        _, spans = _run_traced(star_topology,
                               duration_ns=milliseconds(30))
        transmits = [s for s in spans if s.name == "frame.transmit"]
        assert transmits
        for span in transmits:
            assert span.attributes["duration_ns"] > 0
            assert 0 <= span.attributes["queue"] <= 7

    def test_lossy_link_emits_drop_events(self, star_topology):
        tct = Stream(
            name="tct-a",
            path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(8), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(8),
        )
        schedule = schedule_etsn(star_topology, [tct], [])
        gcl = build_gcl(schedule, mode="etsn")
        tracer = Tracer(max_spans=100_000)
        config = SimConfig(
            duration_ns=milliseconds(200), seed=3, tracer=tracer,
            link_loss={("D1", "SW1"): 1.0},
        )
        report = TsnSimulation(schedule, gcl, config).run()
        drops = [s for s in tracer.spans() if s.name == "frame.drop"]
        assert report.recorder.delivered("tct-a") == 0
        assert drops
        assert all(s.attributes["link"] == "D1->SW1" for s in drops)
        # dropped frames never produce a deliver event on that link
        delivers = [s for s in tracer.spans() if s.name == "frame.deliver"]
        assert not delivers

    def test_untraced_simulation_emits_nothing(self, star_topology):
        """Default SimConfig: the null tracer records no frame events and
        the simulation result is unchanged."""
        tct = Stream(
            name="tct-a",
            path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(8), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(8),
        )
        schedule = schedule_etsn(star_topology, [tct], [])
        gcl = build_gcl(schedule, mode="etsn")
        report = TsnSimulation(
            schedule, gcl, SimConfig(duration_ns=milliseconds(50), seed=3)
        ).run()
        assert report.recorder.delivered("tct-a") > 0
