"""SimFrame and message fragmentation tests."""

import pytest

from repro.model.topology import Link
from repro.sim.frames import SimFrame, message_frames

PATH = (Link("A", "B"), Link("B", "C"))


class TestSimFrame:
    def test_wire_bytes_includes_overhead(self):
        frame = message_frames("s", 7, 0, 100, 0, PATH)[0]
        assert frame.wire_bytes == 100 + 38

    def test_advancing_hops(self):
        frame = message_frames("s", 7, 0, 100, 0, PATH)[0]
        assert frame.current_link.key == ("A", "B")
        assert not frame.is_last_hop
        nxt = frame.advanced()
        assert nxt.current_link.key == ("B", "C")
        assert nxt.is_last_hop
        assert nxt.frame_id == frame.frame_id  # identity preserved
        with pytest.raises(ValueError):
            nxt.advanced()

    def test_unique_frame_ids(self):
        a = message_frames("s", 7, 0, 100, 0, PATH)[0]
        b = message_frames("s", 7, 1, 100, 0, PATH)[0]
        assert a.frame_id != b.frame_id


class TestMessageFrames:
    def test_single_mtu(self):
        frames = message_frames("s", 7, 0, 1500, 50, PATH)
        assert len(frames) == 1
        assert frames[0].frames_in_message == 1
        assert frames[0].created_ns == 50

    def test_multi_mtu_split(self):
        frames = message_frames("s", 7, 3, 3200, 0, PATH)
        assert [f.payload_bytes for f in frames] == [1500, 1500, 200]
        assert [f.frame_index for f in frames] == [0, 1, 2]
        assert all(f.frames_in_message == 3 for f in frames)
        assert all(f.message_id == 3 for f in frames)

    def test_shared_creation_time(self):
        frames = message_frames("s", 7, 0, 4000, 777, PATH)
        assert all(f.created_ns == 777 for f in frames)
