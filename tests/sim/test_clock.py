"""Clock and 802.1AS sync tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import Clock, SyncConfig, SyncDomain
from repro.sim.engine import Simulator
from repro.model.units import milliseconds, seconds


class TestClock:
    def test_perfect_clock_is_identity(self):
        clock = Clock("n")
        assert clock.local(12345) == 12345
        assert clock.to_global(12345) == 12345

    def test_offset(self):
        clock = Clock("n", offset_ns=100)
        assert clock.local(1000) == 1100
        assert clock.to_global(1100) == 1000

    def test_drift_accumulates(self):
        clock = Clock("n", drift_ppb=1000)  # 1000 ppb = 1 us per second
        assert clock.local(milliseconds(1)) == milliseconds(1) + 1
        assert clock.local(seconds(1)) == seconds(1) + 1_000

    def test_negative_drift(self):
        clock = Clock("n", drift_ppb=-500)
        assert clock.local(seconds(2)) == seconds(2) - 1_000

    def test_correction_resets_reference(self):
        clock = Clock("n", offset_ns=5000, drift_ppb=1000)
        clock.correct(seconds(1), residual_ns=10)
        assert clock.local(seconds(1)) == seconds(1) + 10
        # drift resumes from the correction point: 1000 ppb over 1 s
        assert clock.local(seconds(2)) == seconds(2) + 10 + 1_000

    def test_offset_error(self):
        clock = Clock("n", offset_ns=250)
        assert clock.offset_error_ns(1000) == 250

    @given(st.integers(-10_000, 10_000), st.integers(-100_000, 100_000),
           st.integers(0, 10**9))
    def test_to_global_inverts_local(self, offset, drift, t):
        clock = Clock("n", offset_ns=offset, drift_ppb=drift)
        local = clock.local(t)
        recovered = clock.to_global(local)
        # exact up to the integer floor of the drift term
        assert abs(clock.local(recovered) - local) <= 1

    @given(st.integers(-10**15, 10**15), st.integers(0, 900_000_000),
           st.integers(0, 10**15))
    def test_to_global_exact_inverse_for_nonnegative_drift(self, offset, drift, t):
        """For drift >= 0 local() is strictly increasing, so the inverse
        is exact even at extreme drift (90 % of clock rate) and offsets."""
        clock = Clock("n", offset_ns=offset, drift_ppb=drift)
        assert clock.to_global(clock.local(t)) == t

    @given(st.integers(-10**12, 10**12),
           st.integers(-999_999_999, 1_000_000_000),
           st.integers(0, 10**15))
    def test_to_global_is_fixed_point_for_any_drift(self, offset, drift, t):
        """Negative drift plateaus local(); several instants share a
        reading, so only the round trip through local() is exact."""
        clock = Clock("n", offset_ns=offset, drift_ppb=drift)
        local = clock.local(t)
        recovered = clock.to_global(local)
        assert clock.local(recovered) == local
        if drift >= 0:
            # no plateaus: the result is the unique preimage
            assert recovered == t

    def test_to_global_converges_for_large_drift(self):
        """Regression: a fixed 4-step iteration leaves a residual once
        the drift term stops contracting fast (here 50 % of clock rate
        over ~17 minutes, a ~5e11 ns drift term)."""
        clock = Clock("n", drift_ppb=500_000_000)
        t = 10**12
        assert clock.to_global(clock.local(t)) == t

    def test_drift_at_clock_stop_rejected(self):
        with pytest.raises(ValueError, match="drift_ppb must exceed"):
            Clock("n", drift_ppb=-1_000_000_000)
        # just above the floor is fine
        Clock("n", drift_ppb=-999_999_999)


class TestSyncConfigValidation:
    def test_negative_residual_rejected(self):
        with pytest.raises(ValueError, match="residual_error_ns must be >= 0"):
            SyncConfig(residual_error_ns=-1)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError, match="sync_interval_ns must be positive"):
            SyncConfig(sync_interval_ns=0)

    def test_valid_config_accepted(self):
        config = SyncConfig(sync_interval_ns=1, residual_error_ns=0)
        assert config.residual_error_ns == 0


class TestSyncDomain:
    def test_sync_bounds_error(self):
        sim = Simulator()
        clocks = [Clock(f"n{i}", offset_ns=50_000, drift_ppb=2_000) for i in range(3)]
        config = SyncConfig(sync_interval_ns=milliseconds(31.25),
                            residual_error_ns=10)
        domain = SyncDomain(sim, clocks, config, seed=1)
        domain.start()
        sim.run_until(seconds(1))
        for clock in clocks:
            # after a sync round the error is residual + accumulated drift
            assert abs(clock.offset_error_ns(sim.now)) <= domain.worst_case_error_ns()

    def test_worst_case_formula(self):
        sim = Simulator()
        clocks = [Clock("a", drift_ppb=1000)]
        config = SyncConfig(sync_interval_ns=milliseconds(10), residual_error_ns=10)
        domain = SyncDomain(sim, clocks, config)
        assert domain.worst_case_error_ns() == 10 + milliseconds(10) * 1000 // 10**9

    def test_observes_initial_error(self):
        sim = Simulator()
        clocks = [Clock("a", offset_ns=77_000)]
        domain = SyncDomain(sim, clocks, SyncConfig(), seed=0)
        domain.start()
        sim.run_until(milliseconds(1))
        assert domain.max_observed_error_ns >= 77_000

    def test_disabled_sync_never_corrects(self):
        sim = Simulator()
        clocks = [Clock("a", offset_ns=500)]
        domain = SyncDomain(sim, clocks, SyncConfig(enabled=False))
        domain.start()
        sim.run_until(seconds(1))
        assert clocks[0].offset_error_ns(sim.now) == 500
