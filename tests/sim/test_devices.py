"""Talker and event-source tests."""

import pytest

from repro.core.baselines import schedule_etsn
from repro.core.gcl import build_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from repro.sim import SimConfig, TsnSimulation
from repro.traffic.events import validate_min_spacing


def _simple_setup(star_topology, with_ect=True):
    s = Stream(
        name="t1", path=tuple(star_topology.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=2 * 1500, period_ns=milliseconds(4), share=True,
    )
    ects = []
    if with_ect:
        ects.append(EctStream(
            name="e1", source="D2", destination="D3",
            min_interevent_ns=milliseconds(16), length_bytes=1500,
            possibilities=4,
        ))
    schedule = schedule_etsn(star_topology, [s], ects)
    gcl = build_gcl(schedule, mode="etsn")
    return schedule, gcl


class TestTtTalker:
    def test_injects_once_per_period(self, star_topology):
        schedule, gcl = _simple_setup(star_topology, with_ect=False)
        duration = milliseconds(40)
        sim = TsnSimulation(schedule, gcl, SimConfig(duration_ns=duration))
        report = sim.run()
        assert report.recorder.injected("t1") == 10  # 40 ms / 4 ms
        assert report.recorder.delivered("t1") == 10

    def test_quiet_network_matches_scheduled_latency(self, star_topology):
        """Without ECT, measured TCT latency equals the schedule's
        worst-case bound exactly (deterministic network)."""
        schedule, gcl = _simple_setup(star_topology, with_ect=False)
        sim = TsnSimulation(schedule, gcl, SimConfig(duration_ns=milliseconds(40)))
        report = sim.run()
        stats = report.recorder.stats("t1")
        assert stats.minimum_ns == stats.maximum_ns  # zero jitter
        assert stats.maximum_ns == schedule.scheduled_latency_ns("t1")

    def test_extra_slots_not_injected(self, star_topology):
        schedule, gcl = _simple_setup(star_topology, with_ect=True)
        sim = TsnSimulation(
            schedule, gcl,
            SimConfig(duration_ns=milliseconds(40),
                      ect_event_times={"e1": []}),
        )
        report = sim.run()
        # message has 2 frames; extras never materialize as traffic
        assert report.recorder.injected("t1") == 10
        assert report.recorder.delivered("t1") == 10


class TestEctSource:
    def test_min_spacing_respected(self, star_topology):
        schedule, gcl = _simple_setup(star_topology)
        sim = TsnSimulation(
            schedule, gcl, SimConfig(duration_ns=milliseconds(400), seed=5),
        )
        sim.run()
        times = sim.sources[0].event_times
        assert len(times) > 5
        validate_min_spacing(times, milliseconds(16))

    def test_explicit_event_times(self, star_topology):
        schedule, gcl = _simple_setup(star_topology)
        events = [milliseconds(1), milliseconds(20), milliseconds(40)]
        sim = TsnSimulation(
            schedule, gcl,
            SimConfig(duration_ns=milliseconds(60),
                      ect_event_times={"e1": events}),
        )
        report = sim.run()
        assert sim.sources[0].event_times == events
        assert report.recorder.delivered("e1") == 3

    def test_explicit_times_validated(self, star_topology):
        schedule, gcl = _simple_setup(star_topology)
        with pytest.raises(ValueError):
            # sources are armed at build time, so the spacing check fires
            # in the constructor
            TsnSimulation(
                schedule, gcl,
                SimConfig(duration_ns=milliseconds(60),
                          ect_event_times={"e1": [0, milliseconds(1)]}),
            )

    def test_seed_reproducibility(self, star_topology):
        times = []
        for _ in range(2):
            schedule, gcl = _simple_setup(star_topology)
            sim = TsnSimulation(
                schedule, gcl, SimConfig(duration_ns=milliseconds(200), seed=9),
            )
            sim.run()
            times.append(tuple(sim.sources[0].event_times))
        assert times[0] == times[1]

    def test_different_seeds_differ(self, star_topology):
        results = []
        for seed in (1, 2):
            schedule, gcl = _simple_setup(star_topology)
            sim = TsnSimulation(
                schedule, gcl, SimConfig(duration_ns=milliseconds(200), seed=seed),
            )
            sim.run()
            results.append(tuple(sim.sources[0].event_times))
        assert results[0] != results[1]
