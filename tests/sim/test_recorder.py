"""Latency recorder and statistics tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.topology import Link
from repro.sim.frames import SimFrame
from repro.sim.recorder import LatencyRecorder

LINK = Link("A", "B")


def _frame(stream="s", message_id=0, frame_index=0, frames_in_message=1, created=0):
    return SimFrame(
        stream=stream, priority=7, message_id=message_id,
        frame_index=frame_index, frames_in_message=frames_in_message,
        payload_bytes=100, created_ns=created, path=(LINK,),
    )


class TestMessageCompletion:
    def test_single_frame_message(self):
        rec = LatencyRecorder()
        rec.on_deliver(_frame(created=100), 350)
        assert rec.latencies("s") == [250]

    def test_multi_frame_waits_for_last(self):
        rec = LatencyRecorder()
        rec.on_deliver(_frame(frame_index=0, frames_in_message=3, created=0), 100)
        rec.on_deliver(_frame(frame_index=1, frames_in_message=3, created=0), 200)
        assert rec.latencies("s") == []
        assert rec.in_flight() == 1
        rec.on_deliver(_frame(frame_index=2, frames_in_message=3, created=0), 450)
        assert rec.latencies("s") == [450]
        assert rec.in_flight() == 0

    def test_messages_tracked_independently(self):
        rec = LatencyRecorder()
        rec.on_deliver(_frame(message_id=1, created=0), 100)
        rec.on_deliver(_frame(message_id=2, created=1000), 1300)
        assert sorted(rec.latencies("s")) == [100, 300]

    def test_streams_tracked_independently(self):
        rec = LatencyRecorder()
        rec.on_deliver(_frame(stream="a", created=0), 10)
        rec.on_deliver(_frame(stream="b", created=0), 20)
        assert rec.streams() == ["a", "b"]
        assert rec.latencies("a") == [10]
        assert rec.latencies("b") == [20]

    def test_injection_counting(self):
        rec = LatencyRecorder()
        rec.on_inject("s")
        rec.on_inject("s")
        rec.on_deliver(_frame(), 10)
        assert rec.injected("s") == 2
        assert rec.delivered("s") == 1


class TestLostFrames:
    def test_lists_missing_messages_by_id(self):
        rec = LatencyRecorder()
        for message_id in (0, 1, 2):
            rec.on_inject("s", message_id)
        rec.on_deliver(_frame(message_id=1), 10)
        assert rec.lost_frames() == [("s", 0), ("s", 2)]
        assert rec.lost("s") == 2

    def test_multiple_streams_sorted(self):
        rec = LatencyRecorder()
        rec.on_inject("b", 0)
        rec.on_inject("a", 0)
        rec.on_inject("a", 1)
        rec.on_deliver(_frame(stream="a", message_id=1), 10)
        assert rec.lost_frames() == [("a", 0), ("b", 0)]

    def test_in_flight_message_not_double_counted(self):
        """Regression: a multi-frame message with *some* frames delivered
        must appear exactly once in the detail view — per-frame arrivals
        must not multiply the (stream, id) entry."""
        rec = LatencyRecorder()
        rec.on_inject("s", 5)
        rec.on_deliver(_frame(message_id=5, frame_index=0,
                              frames_in_message=3), 100)
        rec.on_deliver(_frame(message_id=5, frame_index=1,
                              frames_in_message=3), 200)
        assert rec.in_flight() == 1
        assert rec.lost_frames() == [("s", 5)]
        # the final frame completes the message: no longer lost
        rec.on_deliver(_frame(message_id=5, frame_index=2,
                              frames_in_message=3), 300)
        assert rec.lost_frames() == []

    def test_duplicate_copies_do_not_multiply_entries(self):
        """FRER-style redundant copies of a delivered frame change
        nothing: the message stays in flight, listed once."""
        rec = LatencyRecorder()
        rec.on_inject("s", 0)
        frame = _frame(message_id=0, frame_index=0, frames_in_message=2)
        rec.on_deliver(frame, 100)
        rec.on_deliver(frame, 150)  # duplicate copy, eliminated
        assert rec.duplicates_eliminated == 1
        assert rec.lost_frames() == [("s", 0)]

    def test_sources_without_ids_do_not_contribute(self):
        """on_inject without a message id keeps only the aggregate count
        (legacy callers); the detail view stays silent for that stream."""
        rec = LatencyRecorder()
        rec.on_inject("legacy")
        assert rec.lost("legacy") == 1
        assert rec.lost_frames() == []


class TestStats:
    def test_basic_stats(self):
        rec = LatencyRecorder()
        for i, latency in enumerate([100, 200, 300]):
            rec.on_deliver(_frame(message_id=i, created=0), latency)
        stats = rec.stats("s")
        assert stats.count == 3
        assert stats.average_ns == 200
        assert stats.minimum_ns == 100
        assert stats.maximum_ns == 300
        assert stats.stddev_ns == pytest.approx(math.sqrt(20000 / 3))
        assert stats.jitter_ns == stats.stddev_ns

    def test_stats_empty_raises(self):
        rec = LatencyRecorder()
        with pytest.raises(KeyError):
            rec.stats("missing")

    def test_percentiles(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.on_deliver(_frame(message_id=i, created=0), i + 1)
        assert rec.percentile("s", 0.5) == 50
        assert rec.percentile("s", 0.99) == 99
        assert rec.percentile("s", 1.0) == 100

    def test_percentile_bounds(self):
        rec = LatencyRecorder()
        rec.on_deliver(_frame(), 10)
        with pytest.raises(ValueError):
            rec.percentile("s", 0)
        with pytest.raises(ValueError):
            rec.percentile("s", 1.5)

    def test_cdf_monotone_and_complete(self):
        rec = LatencyRecorder()
        for i, latency in enumerate([30, 10, 20]):
            rec.on_deliver(_frame(message_id=i, created=0), latency)
        cdf = rec.cdf("s")
        assert [v for v, _ in cdf] == [10, 20, 30]
        assert [f for _, f in cdf] == pytest.approx([1 / 3, 2 / 3, 1.0])

    @given(st.lists(st.integers(1, 10**6), min_size=1, max_size=50))
    def test_stats_match_reference(self, latencies):
        rec = LatencyRecorder()
        for i, latency in enumerate(latencies):
            rec.on_deliver(_frame(message_id=i, created=0), latency)
        stats = rec.stats("s")
        mean = sum(latencies) / len(latencies)
        assert stats.average_ns == pytest.approx(mean)
        assert stats.minimum_ns == min(latencies)
        assert stats.maximum_ns == max(latencies)
        variance = sum((x - mean) ** 2 for x in latencies) / len(latencies)
        assert stats.stddev_ns == pytest.approx(math.sqrt(variance))
