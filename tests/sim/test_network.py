"""Network-assembly level tests: forwarding, stats, drain, utilization."""

import pytest

from repro.core.baselines import schedule_etsn
from repro.core.gcl import build_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from repro.sim import SimConfig, TsnSimulation


def _build(topo, duration=milliseconds(400), **cfg):
    tct = [Stream(
        name="flow", path=tuple(topo.shortest_path("D1", "D4")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=3000, period_ns=milliseconds(4), share=True,
    )]
    ects = [EctStream(
        name="alarm", source="D2", destination="D4",
        min_interevent_ns=milliseconds(16), length_bytes=1500, possibilities=4,
    )]
    schedule = schedule_etsn(topo, tct, ects)
    gcl = build_gcl(schedule, mode="etsn")
    sim = TsnSimulation(schedule, gcl, SimConfig(duration_ns=duration, **cfg))
    return schedule, sim


class TestForwarding:
    def test_multi_hop_store_and_forward(self, two_switch_topology):
        """Latency over 3 hops is at least 3x wire time plus propagation."""
        schedule, sim = _build(two_switch_topology, ect_event_times={"alarm": []})
        report = sim.run()
        stats = report.recorder.stats("flow")
        link = two_switch_topology.link("D1", "SW1")
        wire = sum(link.transmission_ns(w)
                   for w in schedule.stream("flow").wire_bytes_per_frame())
        # the last frame crosses 3 links; earlier frames pipeline
        assert stats.minimum_ns >= wire + 2 * link.transmission_ns(1538)

    def test_every_hop_counted_in_port_stats(self, two_switch_topology):
        _, sim = _build(two_switch_topology, ect_event_times={"alarm": []})
        report = sim.run()
        for key in (("D1", "SW1"), ("SW1", "SW2"), ("SW2", "D4")):
            assert report.port_stats[key].frames_sent > 0
        # the unused reverse direction has no port at all (nothing routes
        # through it, so the GCL builder never materializes it)
        assert ("SW2", "SW1") not in report.port_stats

    def test_utilization_matches_load(self, two_switch_topology):
        _, sim = _build(two_switch_topology, ect_event_times={"alarm": []})
        report = sim.run()
        # 3000 B -> 2 frames -> 2 * 1538+... bytes per 4 ms on 100 Mb/s
        util = report.link_utilization(("SW1", "SW2"))
        expected = (2 * 1538 + 0) * 8 / 0.004 / 100e6
        assert util == pytest.approx(expected, rel=0.1)


class TestDrain:
    def test_default_drain_covers_in_flight_messages(self, two_switch_topology):
        _, sim = _build(two_switch_topology)
        report = sim.run()
        assert report.recorder.in_flight() == 0

    def test_explicit_short_drain_can_cut_messages(self, two_switch_topology):
        _, sim = _build(two_switch_topology)
        report = sim.run(drain_margin_ns=0)
        # not asserting losses (timing dependent), but accounting holds
        for stream in report.recorder.streams():
            assert report.recorder.delivered(stream) <= report.recorder.injected(stream)


class TestReportPlumbing:
    def test_num_events_counted(self, two_switch_topology):
        _, sim = _build(two_switch_topology)
        report = sim.run()
        assert report.num_events > 100

    def test_duration_recorded(self, two_switch_topology):
        _, sim = _build(two_switch_topology, duration=milliseconds(200))
        report = sim.run()
        assert report.duration_ns == milliseconds(200)

    def test_seed_isolation_between_ect_sources(self, two_switch_topology):
        """Two ECT streams in one run get distinct event patterns."""
        topo = two_switch_topology
        tct = []
        ects = [
            EctStream("a1", "D1", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
            EctStream("a2", "D2", "D4", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4),
        ]
        schedule = schedule_etsn(topo, tct, ects)
        gcl = build_gcl(schedule, mode="etsn")
        sim = TsnSimulation(schedule, gcl,
                            SimConfig(duration_ns=milliseconds(400), seed=5))
        sim.run()
        assert sim.sources[0].event_times != sim.sources[1].event_times


class TestSimConfigValidation:
    def test_link_loss_probability_must_be_in_unit_interval(self):
        with pytest.raises(ValueError, match=r"link_loss\[SW1->SW2\]"):
            SimConfig(duration_ns=milliseconds(1),
                      link_loss={("SW1", "SW2"): 1.5})
        with pytest.raises(ValueError, match="within \\[0, 1\\]"):
            SimConfig(duration_ns=milliseconds(1),
                      link_loss={("SW1", "SW2"): -0.1})

    def test_link_loss_boundaries_accepted(self):
        config = SimConfig(duration_ns=milliseconds(1),
                           link_loss={("a", "b"): 0.0, ("b", "c"): 1.0})
        assert config.link_loss[("b", "c")] == 1.0
