"""Best-effort traffic isolation and fault-injection tests."""

import pytest

from repro.core.baselines import schedule_avb, schedule_etsn
from repro.core.gcl import build_gcl
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from repro.sim import BeTrafficSpec, SimConfig, TsnSimulation

DURATION = milliseconds(600)


def _setup(topo, method="etsn", **config_kwargs):
    tct = [Stream(
        name="ctrl", path=tuple(topo.shortest_path("D1", "D4")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=3000, period_ns=milliseconds(4), share=True,
    )]
    ects = [EctStream(
        name="alarm", source="D2", destination="D4",
        min_interevent_ns=milliseconds(16), length_bytes=1500, possibilities=4,
    )]
    if method == "etsn":
        schedule = schedule_etsn(topo, tct, ects)
        mode = "etsn"
    else:
        schedule = schedule_avb(topo, tct, ects)
        mode = "avb"
    gcl = build_gcl(schedule, mode=mode)
    config = SimConfig(duration_ns=DURATION, seed=2,
                       cbs_on_ect=(mode == "avb"), **config_kwargs)
    return schedule, TsnSimulation(schedule, gcl, config).run()


def _be(load=0.3):
    return [BeTrafficSpec(name="bulk", source="D1", destination="D4",
                          load_fraction=load)]


class TestBackgroundTraffic:
    def test_be_frames_flow_in_unallocated_time(self, two_switch_topology):
        _, report = _setup(two_switch_topology, be_traffic=_be())
        assert report.recorder.delivered("bulk") > 10

    def test_be_does_not_move_tct(self, two_switch_topology):
        _, quiet = _setup(two_switch_topology, ect_event_times={"alarm": []})
        _, busy = _setup(two_switch_topology, ect_event_times={"alarm": []},
                         be_traffic=_be())
        q = quiet.recorder.stats("ctrl")
        b = busy.recorder.stats("ctrl")
        # gates + guard bands: BE cannot clip a scheduled window
        assert (q.minimum_ns, q.maximum_ns) == (b.minimum_ns, b.maximum_ns)

    def test_be_barely_moves_ect_under_etsn(self, two_switch_topology):
        """A BE frame already on the wire can delay ECT by at most one
        frame time per hop (no preemption); the jitter stays an order of
        magnitude below the baselines'."""
        _, quiet = _setup(two_switch_topology)
        _, busy = _setup(two_switch_topology, be_traffic=_be())
        mtu_ns = 123_040
        hops = 3
        assert (busy.recorder.stats("alarm").maximum_ns
                <= quiet.recorder.stats("alarm").maximum_ns + hops * mtu_ns)

    def test_ect_priority_over_be_under_avb(self, two_switch_topology):
        """The AVB baseline's definition: ECT has priority over background
        traffic inside unallocated time.  Under heavy BE load the ECT
        class barely moves from its unloaded latency (it only ever waits
        for one in-flight BE frame per hop), while BE itself congests."""
        _, quiet = _setup(two_switch_topology, method="avb")
        _, busy = _setup(two_switch_topology, method="avb",
                         be_traffic=_be(load=0.5))
        mtu_ns = 123_040
        assert (busy.recorder.stats("alarm").maximum_ns
                <= quiet.recorder.stats("alarm").maximum_ns + 3 * mtu_ns)
        bulk = busy.recorder.stats("bulk")
        # BE sees real queueing: its worst case is far above its floor
        assert bulk.maximum_ns > bulk.minimum_ns + 3 * mtu_ns

    def test_be_spec_validation(self):
        with pytest.raises(ValueError):
            BeTrafficSpec("x", "D1", "D2", load_fraction=0.0)
        with pytest.raises(ValueError):
            BeTrafficSpec("x", "D1", "D2", load_fraction=0.5,
                          min_payload=100, max_payload=50)

    def test_be_route_must_have_ports(self, star_topology):
        tct = [Stream(
            name="ctrl", path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(4),
        )]
        schedule = schedule_etsn(star_topology, tct, [])
        gcl = build_gcl(schedule, mode="etsn")
        config = SimConfig(
            duration_ns=DURATION,
            be_traffic=[BeTrafficSpec("x", "D2", "D1", load_fraction=0.2)],
        )
        with pytest.raises(ValueError):
            TsnSimulation(schedule, gcl, config)


class TestFaultInjection:
    def test_lossless_by_default(self, two_switch_topology):
        _, report = _setup(two_switch_topology)
        assert report.frames_lost == 0
        assert report.recorder.lost("ctrl") == 0

    def test_loss_rate_drops_frames(self, two_switch_topology):
        _, report = _setup(two_switch_topology,
                           link_loss={("SW1", "SW2"): 0.2})
        assert report.frames_lost > 0
        assert report.recorder.lost("ctrl") > 0
        # delivered messages' latency is still sane
        assert report.recorder.stats("ctrl").maximum_ns <= milliseconds(4)

    def test_loss_only_on_configured_link(self, two_switch_topology):
        _, report = _setup(two_switch_topology,
                           link_loss={("SW2", "D4"): 1.0},
                           ect_event_times={"alarm": []})
        # everything on the last hop dies; nothing reaches D4
        assert report.recorder.delivered("ctrl") == 0
        assert report.recorder.injected("ctrl") > 0

    def test_loss_accounting_consistent(self, two_switch_topology):
        _, report = _setup(two_switch_topology,
                           link_loss={("SW1", "SW2"): 0.3})
        for stream in ("ctrl", "alarm"):
            injected = report.recorder.injected(stream)
            delivered = report.recorder.delivered(stream)
            assert delivered + report.recorder.lost(stream) == injected

    def test_loss_reproducible_per_seed(self, two_switch_topology):
        reports = [
            _setup(two_switch_topology, link_loss={("SW1", "SW2"): 0.25})[1]
            for _ in range(2)
        ]
        assert reports[0].frames_lost == reports[1].frames_lost

    def test_per_link_loss_invariant_to_other_links_traffic(
        self, two_switch_topology
    ):
        """Regression: each lossy link draws from its own RNG, so link
        A's loss outcomes cannot change when traffic on link B does.

        ``ctrl``'s only lossy hop is its first link (D1->SW1); the alarm
        stream's first hop (D2->SW1) is lossy too.  Changing *when* the
        alarm fires reorders the global sequence of loss draws — with a
        single shared RNG that used to reshuffle ctrl's losses as well.
        """
        losses = {("D1", "SW1"): 0.4, ("D2", "SW1"): 0.5}
        few_events = [milliseconds(100)]
        many_events = [milliseconds(40 * k + 7) for k in range(12)]
        reports = {
            label: _setup(two_switch_topology, link_loss=losses,
                          ect_event_times={"alarm": events})[1]
            for label, events in (("few", few_events), ("many", many_events))
        }
        assert (reports["few"].recorder.injected("ctrl")
                == reports["many"].recorder.injected("ctrl"))
        # ctrl's per-frame loss outcomes are identical despite the alarm
        # traffic change on the other lossy link
        assert (reports["few"].recorder.lost("ctrl")
                == reports["many"].recorder.lost("ctrl"))
        assert (reports["few"].recorder.delivered("ctrl")
                == reports["many"].recorder.delivered("ctrl"))
        # sanity: the experiment really injected different alarm loads
        assert (reports["few"].recorder.injected("alarm")
                != reports["many"].recorder.injected("alarm"))
