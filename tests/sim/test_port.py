"""Egress port tests: gating, strict priority, guard bands, owners, CBS."""

import pytest

from repro.core.gcl import GateWindow, PortGcl
from repro.model.topology import Link
from repro.model.units import MBPS_100
from repro.sim.cbs import CreditBasedShaper
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.frames import SimFrame
from repro.sim.port import EgressPort

CYCLE = 1_000_000  # 1 ms


def _frame(stream="s", priority=5, payload=100, created=0, link=None):
    link = link or Link("A", "B", bandwidth_bps=MBPS_100)
    return SimFrame(
        stream=stream, priority=priority, message_id=0, frame_index=0,
        frames_in_message=1, payload_bytes=payload, created_ns=created,
        path=(link,),
    )


def _port(windows, shapers=None, link=None):
    """Build a port; windows = [(queue, start, end, owner), ...]."""
    sim = Simulator()
    link = link or Link("A", "B", bandwidth_bps=MBPS_100)
    gcl = PortGcl(link=link.key, cycle_ns=CYCLE)
    for queue, start, end, owner in windows:
        gcl.add_window(queue, GateWindow(start, end, owner=owner))
    gcl.finalize()
    delivered = []
    port = EgressPort(
        sim=sim, link=link, gcl=gcl, clock=Clock("A"),
        deliver=lambda f, t: delivered.append((f, t)),
        shapers=shapers,
    )
    return sim, port, delivered, link


class TestGating:
    def test_transmits_inside_open_window(self):
        sim, port, delivered, link = _port([(5, 0, CYCLE, None)])
        frame = _frame()
        sim.at(0, lambda: port.enqueue(frame))
        sim.run_until(CYCLE)
        assert len(delivered) == 1
        _, arrival = delivered[0]
        assert arrival == link.transmission_ns(frame.wire_bytes)

    def test_waits_for_gate_to_open(self):
        sim, port, delivered, link = _port([(5, 500_000, CYCLE, None)])
        sim.at(0, lambda: port.enqueue(_frame()))
        sim.run_until(CYCLE)
        assert len(delivered) == 1
        _, arrival = delivered[0]
        assert arrival == 500_000 + link.transmission_ns(_frame().wire_bytes)

    def test_closed_queue_never_transmits(self):
        sim, port, delivered, _ = _port([(5, 0, CYCLE, None)])
        sim.at(0, lambda: port.enqueue(_frame(priority=3)))
        sim.run_until(3 * CYCLE)
        assert not delivered
        assert port.queued_frames() == 1

    def test_wraps_to_next_cycle(self):
        sim, port, delivered, _ = _port([(5, 0, 100_000, None)])
        # enqueue after this cycle's window closed
        sim.at(200_000, lambda: port.enqueue(_frame()))
        sim.run_until(2 * CYCLE)
        assert len(delivered) == 1
        _, arrival = delivered[0]
        assert arrival >= CYCLE  # waited for next cycle's window


class TestGuardBand:
    def test_frame_that_does_not_fit_waits(self):
        # window of 50 us cannot carry a 123 us MTU frame; the second
        # window is long enough.
        sim, port, delivered, link = _port([
            (5, 0, 50_000, None),
            (5, 500_000, 700_000, None),
        ])
        sim.at(0, lambda: port.enqueue(_frame(payload=1500)))
        sim.run_until(CYCLE)
        assert len(delivered) == 1
        _, arrival = delivered[0]
        assert arrival == 500_000 + link.transmission_ns(_frame(payload=1500).wire_bytes)
        assert port.stats.guard_band_blocks >= 1

    def test_fitting_frame_uses_short_window(self):
        sim, port, delivered, _ = _port([
            (5, 0, 50_000, None),
            (5, 500_000, 700_000, None),
        ])
        sim.at(0, lambda: port.enqueue(_frame(payload=100)))  # ~13 us
        sim.run_until(CYCLE)
        _, arrival = delivered[0]
        assert arrival < 50_000


class TestStrictPriority:
    def test_higher_queue_wins(self):
        # both frames sit queued before the gates open; selection at the
        # window start must pick the higher priority
        sim, port, delivered, _ = _port([
            (5, 300_000, CYCLE, None), (7, 300_000, CYCLE, None),
        ])
        low = _frame(stream="low", priority=5)
        high = _frame(stream="high", priority=7)
        sim.at(0, lambda: port.enqueue(low))
        sim.at(1, lambda: port.enqueue(high))
        sim.run_until(CYCLE)
        assert [f.stream for f, _ in delivered] == ["high", "low"]

    def test_no_preemption_of_started_frame(self):
        sim, port, delivered, _ = _port([
            (5, 0, CYCLE, None), (7, 0, CYCLE, None),
        ])
        low = _frame(stream="low", priority=5, payload=1500)
        high = _frame(stream="high", priority=7)
        sim.at(0, lambda: port.enqueue(low))
        sim.at(1000, lambda: port.enqueue(high))  # low already on the wire
        sim.run_until(CYCLE)
        assert [f.stream for f, _ in delivered] == ["low", "high"]

    def test_lower_queue_fills_blocked_higher_window(self):
        # queue 7's window is too short for its big frame; queue 5 may go.
        sim, port, delivered, _ = _port([
            (7, 0, 50_000, None), (5, 0, CYCLE, None),
        ])
        sim.at(0, lambda: port.enqueue(_frame(stream="big7", priority=7, payload=1500)))
        sim.at(0, lambda: port.enqueue(_frame(stream="ok5", priority=5, payload=100)))
        sim.run_until(CYCLE)
        assert delivered and delivered[0][0].stream == "ok5"


class TestOwnerWindows:
    def test_owner_filters_queue(self):
        sim, port, delivered, _ = _port([
            (5, 0, 200_000, "want"), (5, 500_000, 900_000, "other"),
        ])
        other = _frame(stream="other", priority=5)
        want = _frame(stream="want", priority=5)
        sim.at(0, lambda: port.enqueue(other))   # FIFO head, wrong owner
        sim.at(0, lambda: port.enqueue(want))
        sim.run_until(CYCLE)
        assert [f.stream for f, _ in delivered] == ["want", "other"]
        # "want" went out in the first window despite being behind in FIFO
        assert delivered[0][1] < 200_000

    def test_ownerless_window_serves_fifo_head(self):
        sim, port, delivered, _ = _port([(5, 0, CYCLE, None)])
        first = _frame(stream="a", priority=5)
        second = _frame(stream="b", priority=5)
        sim.at(0, lambda: port.enqueue(first))
        sim.at(0, lambda: port.enqueue(second))
        sim.run_until(CYCLE)
        assert [f.stream for f, _ in delivered] == ["a", "b"]


class TestCbsIntegration:
    def test_shaper_throttles_queue(self):
        link = Link("A", "B", bandwidth_bps=MBPS_100)
        shaper = CreditBasedShaper(MBPS_100 // 2, MBPS_100)
        sim, port, delivered, _ = _port(
            [(6, 0, CYCLE, None)], shapers={6: shaper}, link=link,
        )
        for i in range(4):
            sim.at(0, lambda i=i: port.enqueue(_frame(stream=f"f{i}", priority=6,
                                                      payload=1500)))
        sim.run_until(2 * CYCLE)
        assert len(delivered) == 4
        times = [t for _, t in delivered]
        wire = link.transmission_ns(_frame(payload=1500).wire_bytes)
        # with idleSlope at half rate, frames 2..4 wait a full recovery gap
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 2 * wire - 2 for g in gaps)
        assert port.stats.cbs_blocks >= 1


class TestStats:
    def test_counters(self):
        sim, port, delivered, link = _port([(5, 0, CYCLE, None)])
        sim.at(0, lambda: port.enqueue(_frame(payload=1500)))
        sim.run_until(CYCLE)
        assert port.stats.frames_sent == 1
        assert port.stats.bytes_sent == _frame(payload=1500).wire_bytes
        assert port.stats.busy_ns == link.transmission_ns(_frame(payload=1500).wire_bytes)
