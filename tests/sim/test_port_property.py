"""Property tests of the egress port against its gate program.

For random gate programs and random frame arrivals, every transmission
must lie entirely inside an open window of the frame's queue (in-cycle),
and an owned window must only ever carry its owner's frames.  This is
the run-time mirror of the GCL audit.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.gcl import GateWindow, PortGcl
from repro.model.topology import Link
from repro.model.units import MBPS_100
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.frames import SimFrame
from repro.sim.port import EgressPort

CYCLE = 1_000_000  # 1 ms


@st.composite
def port_scenario(draw):
    # random non-overlapping windows on a few queues
    windows = {}
    for queue in draw(st.sets(st.sampled_from([3, 5, 7]), min_size=1, max_size=3)):
        cursor = 0
        spans = []
        for _ in range(draw(st.integers(1, 3))):
            gap = draw(st.integers(0, 200_000))
            length = draw(st.integers(30_000, 250_000))
            start = cursor + gap
            end = start + length
            if end >= CYCLE:
                break
            owner = draw(st.sampled_from([None, "alpha", "beta"]))
            spans.append((start, end, owner))
            cursor = end
        if spans:
            windows[queue] = spans
    frames = []
    for _ in range(draw(st.integers(1, 10))):
        frames.append((
            draw(st.integers(0, 2 * CYCLE)),              # arrival time
            draw(st.sampled_from(sorted(windows))),        # priority/queue
            draw(st.sampled_from(["alpha", "beta"])),      # stream
            draw(st.sampled_from([100, 500, 1500])),       # payload
        ))
    return windows, frames


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(port_scenario())
def test_transmissions_stay_inside_open_windows(case):
    windows, frames = case
    if not windows:
        return
    sim = Simulator()
    link = Link("A", "B", bandwidth_bps=MBPS_100)
    gcl = PortGcl(link=link.key, cycle_ns=CYCLE)
    for queue, spans in windows.items():
        for start, end, owner in spans:
            gcl.add_window(queue, GateWindow(start, end, owner=owner))
    gcl.finalize()
    delivered = []
    port = EgressPort(
        sim=sim, link=link, gcl=gcl, clock=Clock("A"),
        deliver=lambda f, t: delivered.append((f, t)),
    )
    for arrival, queue, stream, payload in frames:
        sim.at(arrival, lambda a=arrival, q=queue, s=stream, p=payload:
               port.enqueue(SimFrame(
                   stream=s, priority=q, message_id=a, frame_index=0,
                   frames_in_message=1, payload_bytes=p, created_ns=a,
                   path=(link,))))
    sim.run_until(20 * CYCLE)

    # the port coalesces adjacent same-owner windows (a gate held open
    # across equal entries is one interval); mirror that in the oracle
    merged_spans = {
        queue: [(w.start_ns, w.end_ns, w.owner) for w in gcl.windows[queue]]
        for queue in windows
    }

    for frame, arrival_time in delivered:
        duration = link.transmission_ns(frame.wire_bytes)
        start = arrival_time - duration - link.propagation_ns
        tau = start % CYCLE
        spans = merged_spans[frame.priority]
        inside = [
            (s, e, owner) for (s, e, owner) in spans
            if s <= tau and tau + duration <= e
        ]
        assert inside, (
            f"frame of queue {frame.priority} transmitted at in-cycle "
            f"{tau} (+{duration}) outside every open window {spans}"
        )
        # owner windows only carry their owner
        for _, _, owner in inside:
            if owner is not None:
                assert frame.stream == owner

    def wire_of(payload, stream, queue):
        return link.transmission_ns(
            SimFrame(stream=stream, priority=queue, message_id=0,
                     frame_index=0, frames_in_message=1,
                     payload_bytes=payload, created_ns=0,
                     path=(link,)).wire_bytes
        )

    # starvation-freedom, modulo head-of-line blocking: if EVERY frame of
    # a queue fits some window it may use, all of them must be delivered
    # (an unschedulable frame at the head legitimately blocks the FIFO —
    # that is Qbv, and why schedulers size windows per frame)
    for queue in {q for (_, q, _, _) in frames}:
        queue_frames = [f for f in frames if f[1] == queue]
        all_fit = all(
            any(e - s >= wire_of(payload, stream, queue)
                and (owner is None or owner == stream)
                for (s, e, owner) in merged_spans[queue])
            for (_, _, stream, payload) in queue_frames
        )
        if not all_fit:
            continue
        for arrival, _, stream, payload in queue_frames:
            assert any(
                f.created_ns == arrival and f.priority == queue
                and f.stream == stream
                for f, _ in delivered
            ), f"frame at {arrival} (q{queue}, {stream}) starved"
