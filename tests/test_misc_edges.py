"""Assorted edge-case coverage across modules."""

import pytest

from repro.core import schedule_etsn
from repro.core.frer import schedule_etsn_frer
from repro.core.incremental import remove_stream
from repro.core.schedule import validate
from repro.model.stream import EctStream, Priorities, Stream, StreamError
from repro.model.topology import Topology
from repro.model.units import milliseconds
from repro.serialization import schedule_from_dict, schedule_to_dict


def _ring():
    topo = Topology()
    switches = ["SW1", "SW2", "SW3", "SW4"]
    for s in switches:
        topo.add_switch(s)
    for a, b in zip(switches, switches[1:] + switches[:1]):
        topo.add_link(a, b)
    topo.add_device("A")
    topo.add_link("A", "SW1")
    topo.add_link("A", "SW3")
    topo.add_device("B")
    topo.add_link("B", "SW2")
    topo.add_link("B", "SW4")
    return topo


class TestFrerComposition:
    def test_frer_schedule_serializes(self):
        """FRER members carry explicit routes (via); the round trip must
        preserve them and the member mapping."""
        topo = _ring()
        ect = EctStream("estop", "A", "B", min_interevent_ns=milliseconds(16),
                        length_bytes=256, possibilities=4)
        schedule = schedule_etsn_frer(topo, [], [ect])
        loaded = schedule_from_dict(schedule_to_dict(schedule))
        assert loaded.meta["frer_members"] == schedule.meta["frer_members"]
        for member in loaded.ect_streams:
            assert member.via is not None
            assert member.route(loaded.topology)
        validate(loaded)

    def test_remove_frer_member_parent(self):
        topo = _ring()
        ect = EctStream("estop", "A", "B", min_interevent_ns=milliseconds(16),
                        length_bytes=256, possibilities=4)
        schedule = schedule_etsn_frer(topo, [], [ect])
        # removing one *member* retires that member's possibilities only
        after = remove_stream(schedule, "estop@1")
        validate(after)
        assert [e.name for e in after.ect_streams] == ["estop@2"]
        parents = {s.parent for s in after.probabilistic_streams()}
        assert parents == {"estop@2"}


class TestExplicitRoutes:
    def test_via_must_match_endpoints(self):
        with pytest.raises(StreamError):
            EctStream("e", "A", "B", min_interevent_ns=milliseconds(16),
                      length_bytes=100, via=("X", "SW1", "B"))

    def test_via_needs_two_nodes(self):
        with pytest.raises(StreamError):
            EctStream("e", "A", "B", min_interevent_ns=milliseconds(16),
                      length_bytes=100, via=("A",))

    def test_via_routes_through_named_nodes(self):
        topo = _ring()
        ect = EctStream("e", "A", "B", min_interevent_ns=milliseconds(16),
                        length_bytes=100, via=("A", "SW3", "SW4", "B"))
        path = ect.route(topo)
        assert [l.key for l in path] == [
            ("A", "SW3"), ("SW3", "SW4"), ("SW4", "B"),
        ]

    def test_via_over_missing_link_fails(self):
        topo = _ring()
        ect = EctStream("e", "A", "B", min_interevent_ns=milliseconds(16),
                        length_bytes=100, via=("A", "SW2", "B"))
        with pytest.raises(Exception):
            ect.route(topo)  # A-SW2 link does not exist


class TestHeuristicKnobs:
    def test_max_restarts_zero_still_tries_once(self, star_topology):
        from repro.core.heuristic import schedule_heuristic

        s = Stream(
            name="t", path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=800, period_ns=milliseconds(4),
        )
        schedule = schedule_heuristic(star_topology, [s], max_restarts=0)
        validate(schedule)

    def test_guard_margin_visible_in_slots(self, star_topology):
        s = Stream(
            name="t", path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=1500, period_ns=milliseconds(4),
        )
        plain = schedule_etsn(star_topology, [s], [])
        padded = schedule_etsn(star_topology, [s], [], guard_margin_ns=7_000)
        key = ("t", ("D1", "SW1"))
        assert (padded.slots[key][0].duration_ns
                == plain.slots[key][0].duration_ns + 7_000)


class TestGanttEdges:
    def test_width_larger_than_slots(self, star_topology):
        from repro.analysis import render_link_gantt

        s = Stream(
            name="t", path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(4), priority=Priorities.NSH_PL,
            length_bytes=100, period_ns=milliseconds(4),
        )
        schedule = schedule_etsn(star_topology, [s], [])
        text = render_link_gantt(schedule, ("D1", "SW1"), width=200)
        body = [l for l in text.splitlines() if l.strip().startswith("t ")][0]
        assert len(body.split("|")[1]) == 200


class TestCliFigures:
    def test_figures_command_runs_all(self, capsys):
        from repro.cli import main

        assert main(["figures", "--duration-ms", "120"]) == 0
        out = capsys.readouterr().out
        for fig in ("Fig. 11", "Fig. 12", "Fig. 14", "Fig. 15", "Fig. 16"):
            assert fig in out
