"""DecisionCache: epoch-pinned replay, LRU bounds, cacheability rules."""

from repro.frontend.cache import DecisionCache, cacheable
from repro.service import MetricsRegistry
from repro.service.requests import Decision


def _reject(reason, attempts=None, request_id=1):
    return Decision(
        request_id=request_id, op="admit-tct", stream="s",
        accepted=False, reason=reason, attempts=attempts or {},
    )


def _accept(request_id=1):
    return Decision(
        request_id=request_id, op="admit-tct", stream="s",
        accepted=True, rung="fastpath", store_version=2,
    )


DETERMINISTIC = _reject(
    "e2e-floor: s needs at least 246960 ns of wire time over 2 hops "
    "but the budget is 1 ns"
)


class TestCacheable:
    def test_deterministic_rejection_is_cacheable(self):
        assert cacheable(DETERMINISTIC)

    def test_accept_is_never_cacheable(self):
        # an accept publishes, which invalidates its own epoch: a
        # cached accept could never legally be served
        assert not cacheable(_accept())

    def test_name_dependent_rejections_are_not_cacheable(self):
        assert not cacheable(_reject("stream name 's' already in use"))
        assert not cacheable(_reject("name_in_use"))
        assert not cacheable(_reject("concurrent admit in flight for 's'"))
        assert not cacheable(_reject("'s' already admitted on shard0"))

    def test_transient_rejections_are_not_cacheable(self):
        assert not cacheable(_reject(
            "all ladder rungs failed (full: solve exceeded 0.250s budget)"
        ))
        assert not cacheable(_reject("cas_exhausted"))

    def test_attempt_details_are_checked_too(self):
        # the headline reason looks deterministic but a rung attempt
        # records a timeout: a retry could climb further and differ
        poisoned = _reject(
            "all ladder rungs failed",
            attempts={"full": "solve exceeded 0.250s budget"},
        )
        assert not cacheable(poisoned)


class TestDecisionCache:
    def test_store_then_lookup_roundtrip(self):
        cache = DecisionCache(capacity=8)
        assert cache.store(3, ("shape",), DETERMINISTIC)
        assert cache.lookup(3, ("shape",)) is DETERMINISTIC

    def test_lookup_misses_across_epochs(self):
        # soundness by construction: the epoch is part of the key, so
        # an entry proven on version 3 cannot hit at version 4
        cache = DecisionCache(capacity=8)
        cache.store(3, ("shape",), DETERMINISTIC)
        assert cache.lookup(4, ("shape",)) is None

    def test_uncacheable_decisions_are_refused(self):
        cache = DecisionCache(capacity=8)
        assert not cache.store(3, ("shape",), _accept())
        assert cache.lookup(3, ("shape",)) is None
        assert len(cache) == 0

    def test_invalidate_drops_everything_and_counts(self):
        metrics = MetricsRegistry()
        cache = DecisionCache(capacity=8, metrics=metrics)
        cache.store(3, ("a",), DETERMINISTIC)
        cache.store(3, ("b",), DETERMINISTIC)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.lookup(3, ("a",)) is None
        counters = metrics.counters_with_prefix("frontend.cache")
        assert counters["invalidations"] == 1
        assert counters["entries_dropped"] == 2

    def test_lru_eviction_is_bounded_and_keeps_the_hot_entry(self):
        metrics = MetricsRegistry()
        cache = DecisionCache(capacity=2, metrics=metrics)
        cache.store(1, ("a",), DETERMINISTIC)
        cache.store(1, ("b",), DETERMINISTIC)
        assert cache.lookup(1, ("a",)) is not None  # refresh "a"
        cache.store(1, ("c",), DETERMINISTIC)       # evicts "b"
        assert cache.lookup(1, ("b",)) is None
        assert cache.lookup(1, ("a",)) is not None
        assert len(cache) == 2
        assert metrics.counters_with_prefix("frontend.cache")["evictions"] == 1

    def test_hit_and_miss_counters(self):
        metrics = MetricsRegistry()
        cache = DecisionCache(capacity=8, metrics=metrics)
        cache.store(1, ("a",), DETERMINISTIC)
        cache.lookup(1, ("a",))
        cache.lookup(1, ("ghost",))
        counters = metrics.counters_with_prefix("frontend.cache")
        assert counters["hits"] == 1
        assert counters["misses"] == 1
