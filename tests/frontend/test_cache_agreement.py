"""The cache soundness property, checked the hypothesis way.

A cached decision for ``(epoch, shape)`` must never disagree with a
fresh :meth:`AdmissionService.submit` of a same-shaped request on the
same snapshot.  The test replays the frontend's exact caching
discipline (lookup before submit, store only when the store version
did not move, invalidate when it did) against a real service while
hypothesis drives an adversarial mix of feasible admits, infeasible
admits, repeats, and removals.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.cache import DecisionCache
from repro.model.stream import TctRequirement
from repro.model.topology import Topology
from repro.model.units import MBPS_100, milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    Remove,
    ScheduleStore,
    canonical_shape,
    empty_schedule,
)

ENDPOINTS = (("D1", "D3"), ("D2", "D3"), ("D3", "D1"))

#: One drawn step: an admit described by shape parameters, or a remove
#: of one of a small recycled name pool.
admit_specs = st.fixed_dictionaries({
    "kind": st.just("admit"),
    "endpoint": st.integers(min_value=0, max_value=len(ENDPOINTS) - 1),
    "period_ms": st.sampled_from((4, 8, 16)),
    "length": st.sampled_from((64, 800, 1500)),
    # None = implicit deadline (feasible), 1 ns = deterministic reject
    "e2e_ns": st.sampled_from((None, 1)),
})
remove_specs = st.fixed_dictionaries({
    "kind": st.just("remove"),
    "name": st.sampled_from(("ghost", "adm0", "adm1")),
})


def _star() -> Topology:
    topo = Topology()
    topo.add_switch("SW1")
    for device in ("D1", "D2", "D3"):
        topo.add_device(device)
        topo.add_link(device, "SW1", bandwidth_bps=MBPS_100)
    return topo


def _request(spec, name):
    if spec["kind"] == "remove":
        return Remove(spec["name"])
    source, destination = ENDPOINTS[spec["endpoint"]]
    return AdmitTct(TctRequirement(
        name=name, source=source, destination=destination,
        period_ns=milliseconds(spec["period_ms"]),
        length_bytes=spec["length"], e2e_ns=spec["e2e_ns"],
    ))


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(st.one_of(admit_specs, remove_specs),
                      min_size=1, max_size=30))
def test_cached_decision_never_disagrees_with_a_fresh_submit(steps):
    service = AdmissionService(ScheduleStore(empty_schedule(_star())))
    store = service.store
    cache = DecisionCache(capacity=64)
    names = (f"adm{index}" for index in itertools.count())

    for spec in steps:
        request = _request(spec, next(names))
        shape = canonical_shape(request)
        epoch = store.version
        hit = cache.lookup(epoch, shape)
        decision = service.submit(request)
        if hit is not None:
            # the property: the replayed verdict equals what the
            # service freshly decided for a same-shaped request on the
            # very snapshot the entry was proven on
            assert hit.accepted == decision.accepted, (
                f"cache said accepted={hit.accepted} but a fresh submit "
                f"said accepted={decision.accepted} for {request} at "
                f"store version {epoch}"
            )
            assert not decision.accepted, (
                "only rejections are cacheable, so a hit implies reject"
            )
        if store.version == epoch:
            # no publish during the decision: safe to remember
            cache.store(epoch, shape, decision)
        else:
            # a publish moved the snapshot (this accept, here) — the
            # frontend drops everything, and so do we
            cache.invalidate()
