"""Frontend semantics: pipelined ordering, backpressure, cache
invalidation on publish, structured errors, graceful drain."""

import socket
import threading
import time

import pytest

from repro.frontend import protocol
from repro.frontend.server import (
    Frontend,
    FrontendConfig,
    FrontendThread,
    ServiceBackend,
)
from repro.model.stream import TctRequirement
from repro.model.units import milliseconds
from repro.service import (
    AdmissionService,
    AdmitTct,
    ScheduleStore,
    empty_schedule,
)
from repro.service.requests import Decision


def _tct(name, e2e_ns=None, period_ms=8, length=800, src="D1", dst="D3"):
    return AdmitTct(TctRequirement(
        name=name, source=src, destination=dst,
        period_ns=milliseconds(period_ms), length_bytes=length,
        e2e_ns=e2e_ns,
    ))


class _Client:
    """A synchronous JSONL client against the threaded frontend."""

    def __init__(self, address):
        self._sock = socket.create_connection(address, timeout=30)
        self._reader = self._sock.makefile("rb")

    def send(self, request, request_id=None):
        self._sock.sendall(protocol.encode_request(request, request_id))

    def send_raw(self, payload: bytes):
        self._sock.sendall(payload)

    def recv(self):
        line = self._reader.readline()
        assert line, "connection closed mid-stream"
        return protocol.decode_response(line)

    def recv_eof(self) -> bool:
        return self._reader.readline() == b""

    def close(self):
        try:
            self._reader.close()
        finally:
            self._sock.close()


class _BlockingBackend:
    """A stub backend that parks in submit_many until released —
    deterministic queue-full and drain scenarios."""

    kind = "stub"
    shard_count = 1

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.batches = []

    def epoch(self):
        return 0

    def submit_many(self, requests):
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released backend"
        self.batches.append(len(requests))
        return [
            Decision(
                request_id=index, op=request.op,
                stream=request.stream_name, accepted=False,
                reason=f"stub reject {request.stream_name}",
            )
            for index, request in enumerate(requests)
        ]


@pytest.fixture
def service(star_topology):
    return AdmissionService(ScheduleStore(empty_schedule(star_topology)))


def _hosted(backend, **config_kwargs):
    frontend = Frontend(backend, FrontendConfig(**config_kwargs))
    thread = FrontendThread(frontend)
    thread.start()
    return frontend, thread


class TestPipelinedOrdering:
    def test_responses_come_back_in_request_order(self, service):
        frontend, thread = _hosted(ServiceBackend(service))
        client = _Client(thread.address)
        try:
            # deep pipeline, no interleaved reads: a mix of cache
            # misses, cache hits, and accepts must not reorder
            for index in range(40):
                e2e_ns = 1 if index % 3 else None  # 2/3 infeasible
                client.send(_tct(f"p{index}", e2e_ns=e2e_ns), index)
            responses = [client.recv() for _ in range(40)]
            assert [r["id"] for r in responses] == list(range(40))
            assert all(r["ok"] for r in responses)
            rejected = [r for r in responses if not r["decision"]["accepted"]]
            accepted = [r for r in responses if r["decision"]["accepted"]]
            assert rejected and accepted
        finally:
            client.close()
            thread.stop()


class TestBackpressure:
    def test_queue_full_answers_server_busy(self):
        backend = _BlockingBackend()
        frontend, thread = _hosted(
            backend, max_queue=2, max_batch=1, cache_size=0
        )
        client = _Client(thread.address)
        try:
            # one request into the dispatcher (parked in the backend)...
            client.send(_tct("first"), 0)
            assert backend.entered.wait(timeout=10)
            # ...fill the intake queue, then overflow it
            deadline = time.monotonic() + 10
            sent = 1
            busy_expected = 0
            while time.monotonic() < deadline and not busy_expected:
                client.send(_tct(f"fill{sent}"), sent)
                sent += 1
                depth = frontend.metrics.gauge("frontend.queue.depth").value
                if depth >= 2:
                    client.send(_tct("overflow"), sent)
                    sent += 1
                    busy_expected = 1
            assert busy_expected, "queue never filled"
            backend.release.set()
            responses = [client.recv() for _ in range(sent)]
            # responses stay in request order even across the rejection
            assert [r["id"] for r in responses] == list(range(sent))
            busy = [
                r for r in responses
                if not r["ok"] and r["error"] == protocol.ERROR_SERVER_BUSY
            ]
            assert busy, "no server_busy rejection surfaced"
            decided = [r for r in responses if r["ok"]]
            assert len(decided) == sent - len(busy)
            assert (
                frontend.metrics.counter("frontend.rejected_busy").value
                == len(busy)
            )
        finally:
            client.close()
            thread.stop()


class TestDecisionCache:
    def test_repeat_shape_hits_until_a_publish_invalidates(self, service):
        frontend, thread = _hosted(ServiceBackend(service))
        client = _Client(thread.address)
        try:
            def roundtrip(request, request_id):
                client.send(request, request_id)
                return client.recv()

            first = roundtrip(_tct("a1", e2e_ns=1), 1)
            assert first["ok"] and not first["decision"]["accepted"]
            assert not first["cached"]

            second = roundtrip(_tct("a2", e2e_ns=1), 2)
            assert second["ok"] and not second["decision"]["accepted"]
            assert second["cached"], "repeated shape should hit the cache"

            accepted = roundtrip(_tct("f1"), 3)
            assert accepted["decision"]["accepted"]

            # the publish bumped the store version: the cached verdict
            # is for a superseded snapshot and must not be replayed
            third = roundtrip(_tct("a3", e2e_ns=1), 4)
            assert third["ok"] and not third["decision"]["accepted"]
            assert not third["cached"]
            assert (
                frontend.metrics.counter(
                    "frontend.cache.invalidations"
                ).value >= 1
            )

            # and the fresh verdict is cacheable again on the new epoch
            fourth = roundtrip(_tct("a4", e2e_ns=1), 5)
            assert fourth["cached"]
        finally:
            client.close()
            thread.stop()

    def test_cache_disabled_never_reports_cached(self, service):
        frontend, thread = _hosted(ServiceBackend(service), cache_size=0)
        client = _Client(thread.address)
        try:
            for index in range(6):
                client.send(_tct(f"n{index}", e2e_ns=1), index)
            responses = [client.recv() for _ in range(6)]
            assert not any(r["cached"] for r in responses)
        finally:
            client.close()
            thread.stop()


class TestBadRequests:
    def test_malformed_line_is_a_structured_error(self, service):
        frontend, thread = _hosted(ServiceBackend(service))
        client = _Client(thread.address)
        try:
            client.send_raw(b"this is not json\n")
            client.send(_tct("ok1"), "after")
            error = client.recv()
            assert not error["ok"]
            assert error["error"] == protocol.ERROR_BAD_REQUEST
            # the connection survives: the next request still decides
            decided = client.recv()
            assert decided["id"] == "after" and decided["ok"]
        finally:
            client.close()
            thread.stop()

    def test_unknown_op_is_a_structured_error(self, service):
        frontend, thread = _hosted(ServiceBackend(service))
        client = _Client(thread.address)
        try:
            client.send_raw(b'{"op": "admit-warp", "name": "x"}\n')
            error = client.recv()
            assert not error["ok"]
            assert error["error"] == protocol.ERROR_BAD_REQUEST
            assert "admit-warp" in error["detail"]
        finally:
            client.close()
            thread.stop()


class TestGracefulDrain:
    def test_stop_decides_queued_work_before_closing(self):
        backend = _BlockingBackend()
        frontend, thread = _hosted(
            backend, max_queue=16, max_batch=1, cache_size=0
        )
        client = _Client(thread.address)
        try:
            for index in range(5):
                client.send(_tct(f"q{index}"), index)
            assert backend.entered.wait(timeout=10)

            stopper = threading.Thread(target=thread.stop)
            stopper.start()
            time.sleep(0.3)  # let stop() close the listener + mark drain
            backend.release.set()
            stopper.join(timeout=30)
            assert not stopper.is_alive(), "drain never completed"

            # every queued request was decided, none answered
            # shutting_down, and the responses flushed before close
            responses = [client.recv() for _ in range(5)]
            assert [r["id"] for r in responses] == list(range(5))
            assert all(r["ok"] for r in responses)
            assert client.recv_eof()
            # new connections are refused after drain
            with pytest.raises(OSError):
                _Client(thread.address)
        finally:
            client.close()

    def test_requests_arriving_mid_drain_get_shutting_down(self):
        backend = _BlockingBackend()
        frontend, thread = _hosted(
            backend, max_queue=16, max_batch=1, cache_size=0
        )
        client = _Client(thread.address)
        try:
            client.send(_tct("inflight"), 0)
            assert backend.entered.wait(timeout=10)

            stopper = threading.Thread(target=thread.stop)
            stopper.start()
            deadline = time.monotonic() + 10
            while not frontend._draining and time.monotonic() < deadline:
                time.sleep(0.01)
            assert frontend._draining

            # the connection is still open: a late request is refused
            # with a structured shutting_down, not silently dropped
            client.send(_tct("late"), 1)
            backend.release.set()
            stopper.join(timeout=30)

            first = client.recv()
            assert first["id"] == 0 and first["ok"]
            second = client.recv()
            assert second["id"] == 1 and not second["ok"]
            assert second["error"] == protocol.ERROR_SHUTTING_DOWN
        finally:
            client.close()
