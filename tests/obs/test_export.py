"""Export layer: Prometheus rendering, span summaries, frame journeys."""

from __future__ import annotations

import itertools

import pytest

from repro.obs import (
    Tracer,
    format_span_summary,
    frame_journeys,
    per_hop_delays,
    prometheus_name,
    summarize_spans,
    to_prometheus,
)
from repro.service.metrics import MetricsRegistry


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("rungs.full.attempts") == \
            "repro_rungs_full_attempts"

    def test_digit_prefix_guarded_without_namespace(self):
        assert prometheus_name("1latency", namespace="") == "_1latency"

    def test_colons_survive(self):
        assert prometheus_name("a:b") == "repro_a:b"


class TestToPrometheus:
    @pytest.fixture
    def registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests.total").inc(3)
        registry.gauge("store.version").set(7)
        hist = registry.histogram("latency.ms")
        for value in (1.0, 2.0, 3.0, 4.5):
            hist.observe(value)
        return registry

    def test_counter_rendered_with_total_suffix(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_requests_total_total counter" in text
        assert "\nrepro_requests_total_total 3\n" in text

    def test_gauge_rendered(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_store_version gauge" in text
        assert "\nrepro_store_version 7\n" in text

    def test_histogram_rendered_natively(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_latency_ms histogram" in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 4' in text
        assert "repro_latency_ms_sum 10.5" in text
        assert "repro_latency_ms_count 4" in text
        assert "repro_latency_ms_min 1\n" in text
        assert "repro_latency_ms_max 4.5" in text
        assert "# TYPE repro_latency_ms_p99 gauge" in text

    def test_ends_with_newline(self, registry):
        assert to_prometheus(registry).endswith("\n")

    def test_custom_namespace(self, registry):
        text = to_prometheus(registry, namespace="etsn")
        assert "etsn_requests_total_total 3" in text
        assert "repro_" not in text


def _span_fixture():
    """Rung spans with known durations: incremental 1&3 ms, full 10 ms."""
    ticks = itertools.count()
    tracer = Tracer(clock=lambda: next(ticks))
    for rung, duration_ms in (("incremental", 1), ("incremental", 3),
                              ("full", 10)):
        span = tracer.start_span("admission.rung", ts_ns=0, rung=rung)
        tracer.finish(span, ts_ns=duration_ms * 1_000_000)
    tracer.event("frame.enqueue", ts_ns=0, frame_id=1, stream="s1",
                 link="D1->SW1")
    return tracer.spans()


class TestSummarizeSpans:
    def test_per_name_distribution(self):
        summary = summarize_spans(_span_fixture())
        rung = summary["spans"]["admission.rung"]
        assert rung["count"] == 3
        assert rung["p50_ms"] == pytest.approx(3.0)
        assert rung["max_ms"] == pytest.approx(10.0)

    def test_per_rung_breakdown(self):
        summary = summarize_spans(_span_fixture())
        assert summary["rungs"]["incremental"]["count"] == 2
        assert summary["rungs"]["incremental"]["p99_ms"] == pytest.approx(3.0)
        assert summary["rungs"]["full"]["p50_ms"] == pytest.approx(10.0)

    def test_unfinished_spans_skipped(self):
        tracer = Tracer(clock=lambda: 0)
        open_span = tracer.start_span("pending")
        summary = summarize_spans([open_span])
        assert summary["spans"] == {}

    def test_table_renders_rung_section(self):
        table = format_span_summary(summarize_spans(_span_fixture()))
        assert "admission.rung" in table
        assert "per-rung solve latency:" in table
        assert "incremental" in table

    def test_empty_input(self):
        summary = summarize_spans([])
        assert summary == {"spans": {}, "rungs": {}, "dropped_spans": 0}
        assert "span" in format_span_summary(summary)

    def test_dropped_spans_surface_a_warning(self):
        summary = summarize_spans(_span_fixture(), dropped=5)
        assert summary["dropped_spans"] == 5
        rendered = format_span_summary(summary)
        assert "WARNING" in rendered
        assert "5" in rendered

    def test_no_warning_when_nothing_dropped(self):
        rendered = format_span_summary(summarize_spans(_span_fixture()))
        assert "WARNING" not in rendered


def _journey_spans():
    """Two frames of s1 across two hops, one background frame."""
    tracer = Tracer(clock=lambda: 0)
    steps = [
        # frame 1: D1->SW1 then SW1->D3
        ("frame.enqueue", 1, "s1", "D1->SW1", 0),
        ("frame.transmit", 1, "s1", "D1->SW1", 100),
        ("frame.deliver", 1, "s1", "D1->SW1", 250),
        ("frame.enqueue", 1, "s1", "SW1->D3", 250),
        ("frame.deliver", 1, "s1", "SW1->D3", 600),
        # frame 2: first hop only
        ("frame.enqueue", 2, "s1", "D1->SW1", 1000),
        ("frame.deliver", 2, "s1", "D1->SW1", 1400),
        # other stream, must be filterable
        ("frame.enqueue", 3, "bg", "D1->SW1", 0),
        ("frame.deliver", 3, "bg", "D1->SW1", 50),
    ]
    for event, frame_id, stream, link, ts in steps:
        tracer.event(event, ts_ns=ts, frame_id=frame_id, stream=stream,
                     link=link)
    return tracer.spans()


class TestFrameJourneys:
    def test_journeys_keyed_by_frame_sorted_by_time(self):
        journeys = frame_journeys(_journey_spans())
        assert set(journeys) == {1, 2, 3}
        assert [step[0] for step in journeys[1]] == [
            "frame.enqueue", "frame.transmit", "frame.deliver",
            "frame.enqueue", "frame.deliver",
        ]
        assert journeys[1][-1] == ("frame.deliver", "SW1->D3", 600)

    def test_stream_filter(self):
        journeys = frame_journeys(_journey_spans(), stream="bg")
        assert set(journeys) == {3}

    def test_non_frame_spans_ignored(self):
        tracer = Tracer(clock=lambda: 0)
        tracer.event("admission.request", ts_ns=0)
        assert frame_journeys(tracer.spans()) == {}

    def test_per_hop_delays(self):
        delays = per_hop_delays(_journey_spans(), stream="s1")
        assert delays == {"D1->SW1": [250, 400], "SW1->D3": [350]}

    def test_per_hop_delays_all_streams(self):
        delays = per_hop_delays(_journey_spans())
        assert delays["D1->SW1"] == [50, 250, 400]
