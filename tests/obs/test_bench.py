"""Benchmark regression tracking: metric discovery, diff verdicts."""

import pytest

from repro.obs import (
    collect_throughput_metrics,
    diff_benchmarks,
    format_bench_diff,
    split_failures,
)


class TestCollect:
    def test_discovers_per_sec_leaves_recursively(self):
        payload = {
            "rungs": {
                "incremental": {"admissions_per_sec": 250.0, "mean_ms": 4},
                "full": {"admissions_per_sec": 60.0},
            },
            "speedup": 1.8,
            "label": "cluster",
        }
        assert collect_throughput_metrics(payload) == {
            "rungs.full.admissions_per_sec": 60.0,
            "rungs.incremental.admissions_per_sec": 250.0,
            "speedup": 1.8,
        }

    def test_lists_get_indexed_paths(self):
        payload = {"runs": [{"ops_per_sec": 10}, {"ops_per_sec": 20}]}
        assert collect_throughput_metrics(payload) == {
            "runs[0].ops_per_sec": 10.0,
            "runs[1].ops_per_sec": 20.0,
        }

    def test_bools_and_non_throughput_ignored(self):
        assert collect_throughput_metrics(
            {"ok_per_sec": True, "mean_ms": 7.0}
        ) == {}


class TestDiff:
    def test_within_margin_is_ok(self):
        [delta] = diff_benchmarks({"x_per_sec": 100}, {"x_per_sec": 85})
        assert delta.status == "ok"
        assert not delta.failed

    def test_regression_beyond_margin_fails(self):
        [delta] = diff_benchmarks({"x_per_sec": 100}, {"x_per_sec": 79})
        assert delta.status == "regressed"
        assert delta.failed
        assert delta.ratio == pytest.approx(0.79)

    def test_margin_is_configurable(self):
        [delta] = diff_benchmarks(
            {"x_per_sec": 100}, {"x_per_sec": 79}, max_regression=0.25
        )
        assert delta.status == "ok"

    def test_missing_metric_fails(self):
        [delta] = diff_benchmarks({"x_per_sec": 100}, {})
        assert delta.status == "missing"
        assert delta.failed

    def test_new_metric_never_fails(self):
        [delta] = diff_benchmarks({}, {"x_per_sec": 100})
        assert delta.status == "new"
        assert not delta.failed

    def test_improvement_beyond_margin_labelled(self):
        [delta] = diff_benchmarks({"x_per_sec": 100}, {"x_per_sec": 130})
        assert delta.status == "improved"
        assert not delta.failed

    def test_deltas_sorted_by_metric(self):
        deltas = diff_benchmarks(
            {"b_per_sec": 1, "a_per_sec": 1},
            {"b_per_sec": 1, "a_per_sec": 1},
        )
        assert [d.metric for d in deltas] == ["a_per_sec", "b_per_sec"]

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            diff_benchmarks({}, {}, max_regression=1.0)


class TestFormatAndSplit:
    def test_fail_line_on_regression(self):
        deltas = diff_benchmarks({"x_per_sec": 100}, {"x_per_sec": 10})
        text = format_bench_diff(deltas)
        assert "REGRESSED" in text
        assert "FAIL" in text

    def test_ok_line_when_clean(self):
        deltas = diff_benchmarks({"x_per_sec": 100}, {"x_per_sec": 100})
        assert "ok: no metric regressed" in format_bench_diff(deltas)

    def test_split_failures(self):
        deltas = diff_benchmarks(
            {"good_per_sec": 100, "bad_per_sec": 100},
            {"good_per_sec": 100, "bad_per_sec": 1},
        )
        failed, passed = split_failures(deltas)
        assert [d.metric for d in failed] == ["bad_per_sec"]
        assert [d.metric for d in passed] == ["good_per_sec"]
