"""Prometheus exposition edge cases: hostile names, label escaping,
and format validity of the native histogram output."""

import pytest

from repro.obs import (
    Histogram,
    cluster_to_prometheus,
    prometheus_label_value,
    prometheus_name,
    to_prometheus,
)
from repro.service.metrics import MetricsRegistry

from tests.service.test_prometheus_export import parse_exposition


class TestNameSanitization:
    def test_dotted_names_flatten(self):
        assert prometheus_name("latency.rung.full_ms") == \
            "repro_latency_rung_full_ms"

    def test_hostile_characters_become_underscores(self):
        for hostile in ("a-b", "a b", "a/b", "a{b}", 'a"b', "a\nb",
                        "a#b", "émoji☃"):
            name = prometheus_name(hostile)
            assert all(
                c.isalnum() and c.isascii() or c in "_:" for c in name
            ), f"{hostile!r} -> {name!r} is not a legal metric name"

    def test_leading_digit_gets_prefixed(self):
        assert not prometheus_name("99th.latency", namespace="")[0].isdigit()

    def test_namespace_optional(self):
        assert prometheus_name("x", namespace="") == "x"

    def test_hostile_registry_still_parses(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with spaces/and#stuff").inc()
        registry.gauge('quo"te').set(1)
        registry.histogram("99.percentile latency").observe(2.0)
        parse_exposition(to_prometheus(registry))


class TestLabelValueEscaping:
    def test_backslash_escapes_first(self):
        # a preexisting \n sequence must not double-unescape
        assert prometheus_label_value("a\\nb") == "a\\\\nb"

    def test_quote_escaped(self):
        assert prometheus_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline_escaped(self):
        assert prometheus_label_value("line1\nline2") == "line1\\nline2"

    def test_combined_hostile_value(self):
        value = 'back\\slash "quoted"\nnewline'
        escaped = prometheus_label_value(value)
        assert "\n" not in escaped
        assert escaped == 'back\\\\slash \\"quoted\\"\\nnewline'

    def test_plain_utf8_passes_through(self):
        assert prometheus_label_value("shard-0/région") == "shard-0/région"

    def test_hostile_shard_label_renders_one_line_per_sample(self):
        registry = MetricsRegistry()
        registry.counter("requests.total").inc()
        text = cluster_to_prometheus(
            {'evil"shard\n': registry.to_dict()}
        )
        sample_lines = [
            line for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert len(sample_lines) == 1
        assert 'shard="evil\\"shard\\n"' in sample_lines[0]


class TestHistogramExposition:
    def test_buckets_are_cumulative_and_end_in_inf(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 3.0, 2e7):  # last one overflows
            registry.histogram("latency_ms").observe(value)
        text = to_prometheus(registry)
        families = parse_exposition(text)
        kind, samples = families["repro_latency_ms"]
        assert kind == "histogram"
        buckets = [
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == "repro_latency_ms_bucket"
        ]
        assert buckets[-1][0] == "+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 4.0
        assert samples[("repro_latency_ms_count", ())] == 4.0
        assert samples[("repro_latency_ms_sum", ())] == pytest.approx(
            0.5 + 1.5 + 3.0 + 2e7
        )

    def test_empty_histogram_exports_count_zero(self):
        registry = MetricsRegistry()
        registry.histogram("latency_ms")  # created, never observed
        families = parse_exposition(to_prometheus(registry))
        samples = families["repro_latency_ms"][1]
        assert samples[("repro_latency_ms_count", ())] == 0.0

    def test_percentile_companions_are_gauges(self):
        registry = MetricsRegistry()
        registry.histogram("latency_ms").observe(2.0)
        families = parse_exposition(to_prometheus(registry))
        for suffix in ("_p50", "_p99", "_p999", "_min", "_max"):
            family = f"repro_latency_ms{suffix}"
            assert families[family][0] == "gauge"

    def test_cluster_exposition_declares_each_family_once(self):
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.histogram("latency_ms").observe(1.0)
        shard_b.histogram("latency_ms").observe(5.0)
        text = cluster_to_prometheus(
            {"s0": shard_a.to_dict(), "s1": shard_b.to_dict()}
        )
        # parse_exposition rejects duplicate HELP/TYPE, so a successful
        # parse is the property; also check both shards' samples landed
        families = parse_exposition(text)
        samples = families["repro_latency_ms"][1]
        assert samples[("repro_latency_ms_count",
                        (("shard", "s0"),))] == 1.0
        assert samples[("repro_latency_ms_count",
                        (("shard", "s1"),))] == 1.0
