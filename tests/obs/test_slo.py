"""SLO evaluation: targets, error budgets, report rendering."""

import pytest

from repro.obs import (
    DEFAULT_TARGETS,
    Histogram,
    SloTarget,
    evaluate_slos,
    format_slo_report,
)


def _metrics(name="latency.decision_ms", values=()):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return {"histograms": {name: histogram.summary()}}


class TestTarget:
    def test_parse_spec(self):
        target = SloTarget.parse("latency.decision_ms:0.99:250")
        assert target.metric == "latency.decision_ms"
        assert target.quantile == 0.99
        assert target.objective_ms == 250.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            SloTarget.parse("latency.decision_ms:0.99")

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            SloTarget(metric="m", quantile=1.0, objective_ms=10)
        with pytest.raises(ValueError):
            SloTarget(metric="m", quantile=0.5, objective_ms=0)


class TestEvaluate:
    def test_met_when_violations_within_budget(self):
        # 100 observations, 1 over a p99 objective: budget is exactly 1
        values = [1.0] * 99 + [500.0]
        target = SloTarget(metric="m", quantile=0.99, objective_ms=250)
        [result] = evaluate_slos(_metrics("m", values), [target])
        assert result.count == 100
        assert result.violations == 1
        assert result.budget == 1
        assert result.met
        assert result.budget_remaining == 0

    def test_violated_when_budget_exhausted(self):
        values = [1.0] * 98 + [500.0, 600.0]  # 2 over, budget 1
        target = SloTarget(metric="m", quantile=0.99, objective_ms=250)
        [result] = evaluate_slos(_metrics("m", values), [target])
        assert result.violations == 2
        assert not result.met

    def test_attained_quantile_reported(self):
        values = [float(v) for v in range(1, 101)]
        target = SloTarget(metric="m", quantile=0.50, objective_ms=1000)
        [result] = evaluate_slos(_metrics("m", values), [target])
        assert result.attained_ms == pytest.approx(50, rel=0.19)

    def test_missing_histogram_met_by_default(self):
        target = SloTarget(metric="absent", quantile=0.99, objective_ms=10)
        [result] = evaluate_slos({"histograms": {}}, [target])
        assert result.missing
        assert result.met

    def test_require_all_flags_missing(self):
        target = SloTarget(metric="absent", quantile=0.99, objective_ms=10)
        [result] = evaluate_slos(
            {"histograms": {}}, [target], require_all=True
        )
        assert result.missing
        assert not result.met

    def test_default_targets_cover_decision_latency(self):
        metrics = {name: t for t in DEFAULT_TARGETS
                   for name in [t.metric]}
        assert "latency.decision_ms" in metrics

    def test_evaluates_saved_summary_identically_to_live(self):
        """from_summary is lossless, so the report from a saved metrics
        JSON equals the report from the live registry."""
        import json

        values = [1.0, 2.0, 300.0]
        target = SloTarget(metric="m", quantile=0.5, objective_ms=100)
        live = evaluate_slos(_metrics("m", values), [target])
        saved = json.loads(json.dumps(_metrics("m", values)))
        restored = evaluate_slos(saved, [target])
        assert [r.to_dict() for r in live] == [r.to_dict() for r in restored]


class TestReport:
    def test_table_marks_violations(self):
        values = [500.0] * 10
        target = SloTarget(metric="m", quantile=0.9, objective_ms=100)
        report = format_slo_report(
            evaluate_slos(_metrics("m", values), [target])
        )
        assert "VIOLATED" in report
        assert "p90<=100ms" in report

    def test_table_marks_missing(self):
        target = SloTarget(metric="absent", quantile=0.99, objective_ms=10)
        report = format_slo_report(evaluate_slos({"histograms": {}},
                                                 [target]))
        assert "no-data" in report
