"""Tracer core: span lifecycle, parentage, ring buffer, null tracer."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, children_of


@pytest.fixture
def tracer() -> Tracer:
    """A tracer on a deterministic clock ticking 10 ns per reading."""
    ticks = itertools.count(0, 10)
    return Tracer(clock=lambda: next(ticks))


class TestSpanLifecycle:
    def test_span_records_interval(self, tracer):
        with tracer.span("work", kind="unit") as span:
            assert span.end_ns is None
        (finished,) = tracer.spans()
        assert finished is span
        assert finished.name == "work"
        assert finished.attributes["kind"] == "unit"
        assert finished.start_ns == 0
        assert finished.end_ns == 10
        assert finished.duration_ns == 10

    def test_nesting_links_parent_and_trace(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        # exported in completion order: inner finished first
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        assert children_of(tracer.spans(), outer) == [inner]

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_set_attaches_outcome_attributes(self, tracer):
        with tracer.span("rung") as span:
            span.set(outcome="success", attempt=2)
        assert tracer.spans()[0].attributes == {
            "outcome": "success", "attempt": 2,
        }

    def test_exception_marks_error_and_finishes(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"
        assert span.end_ns is not None

    def test_explicit_ts_ns_overrides_clock(self, tracer):
        ctx = tracer.span("sim", ts_ns=5_000)
        with ctx as span:
            pass
        assert span.start_ns == 5_000
        # end still comes from the clock unless finish() got a stamp
        assert span.end_ns == 0

    def test_event_is_instantaneous_and_exported(self, tracer):
        span = tracer.event("frame.enqueue", ts_ns=42, frame_id=7)
        assert span.start_ns == span.end_ns == 42
        assert span.duration_ns == 0
        assert tracer.spans() == [span]

    def test_event_inherits_thread_parent(self, tracer):
        with tracer.span("batch") as batch:
            event = tracer.event("tick")
        assert event.parent_id == batch.span_id


class TestStartSpanFinish:
    """The off-stack API used for per-request spans held side by side."""

    def test_start_span_does_not_capture_later_children(self, tracer):
        request = tracer.start_span("admission.request")
        with tracer.span("admission.rung") as rung:
            pass
        tracer.finish(request)
        # rung did NOT implicitly attach to the off-stack request span
        assert rung.parent_id is None
        assert request.end_ns is not None

    def test_explicit_parent_crosses_threads(self, tracer):
        with tracer.span("rung") as rung:
            seen = {}

            def worker():
                with tracer.span("solve", parent=rung) as solve:
                    seen["solve"] = solve

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        solve = seen["solve"]
        assert solve.parent_id == rung.span_id
        assert solve.trace_id == rung.trace_id

    def test_worker_thread_has_its_own_stack(self, tracer):
        with tracer.span("main-root"):
            seen = {}

            def worker():
                with tracer.span("worker-root") as span:
                    seen["span"] = span

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # without an explicit parent, a worker-thread span is a new root
        assert seen["span"].parent_id is None

    def test_finish_accepts_explicit_timestamp(self, tracer):
        span = tracer.start_span("sim-work", ts_ns=100)
        tracer.finish(span, ts_ns=250)
        assert span.duration_ns == 150

    def test_out_of_order_finish_keeps_stack_sane(self, tracer):
        a = tracer.start_span("a")
        with tracer.span("outer") as outer:
            tracer.finish(a)  # finishing an off-stack span must not pop outer
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id


class TestRingBuffer:
    def test_ring_drops_oldest_and_counts(self):
        ticks = itertools.count()
        tracer = Tracer(clock=lambda: next(ticks), max_spans=4)
        for i in range(10):
            tracer.event(f"e{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [s.name for s in tracer.spans()] == ["e6", "e7", "e8", "e9"]

    def test_clear_resets_ring_and_drop_count(self):
        tracer = Tracer(clock=lambda: 0, max_spans=2)
        for _ in range(5):
            tracer.event("e")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.spans() == []

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestNullTracer:
    def test_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_operations_are_noops(self):
        with NULL_TRACER.span("x", key="v") as ctx:
            ctx.set(outcome="ignored")  # context supports .set like a Span
        span = NULL_TRACER.start_span("y")
        NULL_TRACER.finish(span)
        assert NULL_TRACER.event("z") is None
        assert NULL_TRACER.spans() == []
        assert len(NULL_TRACER) == 0
        NULL_TRACER.clear()

    def test_null_span_swallows_exceptions_transparently(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("doomed"):
                raise KeyError("boom")


class TestAmbientContext:
    """TraceContext + use_context: trace propagation across threads."""

    def test_current_context_names_the_open_span(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                context = tracer.current_context()
        spans = {s.name: s for s in tracer.spans()}
        assert context.trace_id == spans["inner"].trace_id
        assert context.span_id == spans["inner"].span_id

    def test_use_context_adopts_foreign_parent(self, tracer):
        import threading

        from repro.obs import TraceContext

        with tracer.span("root"):
            context = tracer.current_context()

        def worker():
            with tracer.use_context(context):
                with tracer.span("remote"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        spans = {s.name: s for s in tracer.spans()}
        assert spans["remote"].trace_id == spans["root"].trace_id
        assert spans["remote"].parent_id == spans["root"].span_id
        assert isinstance(context, TraceContext)

    def test_explicit_parent_beats_ambient(self, tracer):
        with tracer.span("a"):
            context_a = tracer.current_context()
        with tracer.span("b") as span_b:
            with tracer.use_context(context_a):
                with tracer.span("child", parent=span_b):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["child"].parent_id == spans["b"].span_id

    def test_ambient_restored_after_use(self, tracer):
        with tracer.span("a"):
            context = tracer.current_context()
        with tracer.use_context(context):
            pass
        with tracer.span("fresh"):
            pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["fresh"].parent_id is None

    def test_context_of_null_span_is_none(self):
        from repro.obs import TraceContext

        with NULL_TRACER.span("x") as ctx:
            assert TraceContext.of(ctx) is None
        assert NULL_TRACER.current_context() is None
        with NULL_TRACER.use_context(None) as ambient:
            assert ambient is None

    def test_context_round_trips_through_dict(self):
        from repro.obs import TraceContext

        context = TraceContext(trace_id=3, span_id=9)
        assert TraceContext.from_dict(context.to_dict()) == context


class TestSpanDataclass:
    def test_unfinished_duration_is_zero(self):
        span = Span(name="s", trace_id=1, span_id=1, parent_id=None,
                    start_ns=100)
        assert span.duration_ns == 0

    def test_set_returns_self_for_chaining(self):
        span = Span(name="s", trace_id=1, span_id=1, parent_id=None,
                    start_ns=0)
        assert span.set(a=1).set(b=2) is span
        assert span.attributes == {"a": 1, "b": 2}
