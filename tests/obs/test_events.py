"""Structured event journal: ring semantics, filtering, JSONL."""

import itertools

import pytest

from repro.obs import (
    NULL_EVENT_LOG,
    EventLog,
    filter_events,
    load_events,
    save_events,
)


@pytest.fixture
def log() -> EventLog:
    ticks = itertools.count()
    return EventLog(clock=lambda: next(ticks) * 1_000)


class TestEmit:
    def test_sequence_is_monotone(self, log):
        first = log.emit("admission.decision", request="a")
        second = log.emit("admission.cas_retry", attempt=1)
        assert (first.seq, second.seq) == (1, 2)

    def test_clock_stamps_when_no_explicit_ts(self, log):
        assert log.emit("x").ts_ns == 0
        assert log.emit("x").ts_ns == 1_000
        assert log.emit("x", ts_ns=42).ts_ns == 42

    def test_trace_correlation_is_optional(self, log):
        tagged = log.emit("x", trace_id=7, span_id=3)
        bare = log.emit("x")
        assert (tagged.trace_id, tagged.span_id) == (7, 3)
        assert (bare.trace_id, bare.span_id) == (None, None)

    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(clock=lambda: 0, max_events=3)
        for i in range(5):
            log.emit("x", index=i)
        assert log.dropped == 2
        assert [e.attributes["index"] for e in log.events()] == [2, 3, 4]
        # seq numbers expose the gap
        assert log.events()[0].seq == 3

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)


class TestNullLog:
    def test_noop_and_disabled(self):
        assert NULL_EVENT_LOG.enabled is False
        assert NULL_EVENT_LOG.emit("x", a=1) is None
        assert NULL_EVENT_LOG.events() == []
        assert len(NULL_EVENT_LOG) == 0


class TestFilter:
    def _populated(self, log):
        log.emit("admission.decision", request="a", accepted=True,
                 trace_id=1)
        log.emit("admission.cas_retry", attempt=1, trace_id=1)
        log.emit("twophase.abort", reason="stale_version", trace_id=2)
        log.emit("twophase.rollback", shard="s0", trace_id=2)
        return log.events()

    def test_exact_kind(self, log):
        events = self._populated(log)
        assert [e.kind for e in filter_events(events, kind="twophase.abort")
                ] == ["twophase.abort"]

    def test_family_prefix(self, log):
        events = self._populated(log)
        kinds = [e.kind for e in filter_events(events, kind="twophase.")]
        assert kinds == ["twophase.abort", "twophase.rollback"]

    def test_trace_id(self, log):
        events = self._populated(log)
        assert len(filter_events(events, trace_id=2)) == 2

    def test_attribute_equality(self, log):
        events = self._populated(log)
        matched = filter_events(events, reason="stale_version")
        assert [e.kind for e in matched] == ["twophase.abort"]

    def test_since_seq(self, log):
        events = self._populated(log)
        assert [e.seq for e in filter_events(events, since_seq=2)] == [3, 4]


class TestJsonl:
    def test_round_trip(self, log, tmp_path):
        log.emit("admission.decision", request="a", accepted=True,
                 trace_id=9, span_id=4)
        log.emit("solver.abandoned", timeout_s=1.5)
        path = tmp_path / "events.jsonl"
        assert save_events(str(path), log.events()) == 2
        restored = load_events(str(path))
        assert [e.to_dict() for e in restored] == \
            [e.to_dict() for e in log.events()]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"seq": 1, "kind": "x", "ts_ns": 0}\n\n'
            '{"seq": 2, "kind": "y", "ts_ns": 5}\n'
        )
        assert [e.kind for e in load_events(str(path))] == ["x", "y"]
