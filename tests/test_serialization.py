"""Round-trip tests for JSON persistence."""

import json

import pytest

from repro.core.baselines import schedule_etsn, schedule_period
from repro.core.gcl import build_gcl
from repro.core.schedule import ScheduleError, validate
from repro.model.stream import EctStream, Priorities, Stream
from repro.model.units import milliseconds
from repro.serialization import (
    gcl_from_dict,
    gcl_to_dict,
    load_deployment,
    save_deployment,
    schedule_from_dict,
    schedule_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.sim import SimConfig, TsnSimulation


def _schedule(topo):
    tct = [Stream(
        name="sh", path=tuple(topo.shortest_path("D1", "D3")),
        e2e_ns=milliseconds(4), priority=Priorities.SH_PL,
        length_bytes=1500, period_ns=milliseconds(4), share=True,
    )]
    ects = [EctStream("alarm", "D2", "D3", min_interevent_ns=milliseconds(16),
                      length_bytes=1500, possibilities=4)]
    return schedule_etsn(topo, tct, ects)


class TestTopologyRoundTrip:
    def test_structure_preserved(self, two_switch_topology):
        data = topology_to_dict(two_switch_topology)
        json.dumps(data)  # must be JSON-able
        loaded = topology_from_dict(data)
        assert {n.name for n in loaded.switches} == \
            {n.name for n in two_switch_topology.switches}
        assert {n.name for n in loaded.devices} == \
            {n.name for n in two_switch_topology.devices}
        for link in two_switch_topology.links:
            twin = loaded.link(*link.key)
            assert twin.bandwidth_bps == link.bandwidth_bps
            assert twin.propagation_ns == link.propagation_ns
            assert twin.time_unit_ns == link.time_unit_ns

    def test_routes_identical(self, two_switch_topology):
        loaded = topology_from_dict(topology_to_dict(two_switch_topology))
        original = [l.key for l in two_switch_topology.shortest_path("D1", "D4")]
        assert [l.key for l in loaded.shortest_path("D1", "D4")] == original


class TestScheduleRoundTrip:
    def test_slots_and_streams_preserved(self, star_topology):
        schedule = _schedule(star_topology)
        loaded = schedule_from_dict(schedule_to_dict(schedule))
        assert {s.name for s in loaded.streams} == \
            {s.name for s in schedule.streams}
        assert loaded.slots.keys() == schedule.slots.keys()
        for key in schedule.slots:
            assert loaded.slots[key] == schedule.slots[key]
        assert [e.name for e in loaded.ect_streams] == ["alarm"]
        assert loaded.hyperperiod_ns == schedule.hyperperiod_ns

    def test_loaded_schedule_revalidates(self, star_topology):
        schedule = _schedule(star_topology)
        loaded = schedule_from_dict(schedule_to_dict(schedule))
        validate(loaded)

    def test_tampered_file_rejected(self, star_topology):
        schedule = _schedule(star_topology)
        data = schedule_to_dict(schedule)
        # corrupt one slot so two streams collide
        entry = next(e for e in data["slots"] if e["stream"] == "sh")
        entry["frames"][0]["offset_ns"] = milliseconds(5)  # beyond period
        with pytest.raises(ScheduleError):
            schedule_from_dict(data)

    def test_guarantee_survives_round_trip(self, star_topology):
        schedule = _schedule(star_topology)
        loaded = schedule_from_dict(schedule_to_dict(schedule))
        assert loaded.ect_guarantee_ns("alarm") == schedule.ect_guarantee_ns("alarm")

    def test_version_checked(self, star_topology):
        data = schedule_to_dict(_schedule(star_topology))
        data["version"] = 99
        with pytest.raises(ValueError):
            schedule_from_dict(data)


class TestGclRoundTrip:
    def test_windows_preserved(self, star_topology):
        schedule = _schedule(star_topology)
        gcl = build_gcl(schedule, mode="etsn")
        loaded = gcl_from_dict(gcl_to_dict(gcl))
        assert loaded.mode == gcl.mode
        assert loaded.cycle_ns == gcl.cycle_ns
        assert loaded.ports.keys() == gcl.ports.keys()
        for key, port in gcl.ports.items():
            twin = loaded.port(key)
            assert twin.windows == port.windows

    def test_state_queries_identical(self, star_topology):
        schedule = _schedule(star_topology)
        gcl = build_gcl(schedule, mode="etsn")
        loaded = gcl_from_dict(gcl_to_dict(gcl))
        for key, port in gcl.ports.items():
            twin = loaded.port(key)
            for probe in range(0, gcl.cycle_ns, gcl.cycle_ns // 37):
                for queue in (0, 4, 7):
                    assert twin.state_at(queue, probe) == port.state_at(queue, probe)


class TestDeploymentFile:
    def test_save_load_and_simulate(self, star_topology, tmp_path):
        schedule = _schedule(star_topology)
        gcl = build_gcl(schedule, mode="etsn")
        path = tmp_path / "deployment.json"
        save_deployment(str(path), schedule, gcl)
        loaded_schedule, loaded_gcl = load_deployment(str(path))

        # the loaded deployment must simulate identically (deterministic)
        def run(s, g):
            report = TsnSimulation(
                s, g, SimConfig(duration_ns=milliseconds(200), seed=4)
            ).run()
            return report.recorder.latencies("alarm")

        assert run(loaded_schedule, loaded_gcl) == run(schedule, gcl)

    def test_period_mode_meta_survives(self, star_topology, tmp_path):
        tct = [Stream(
            name="t", path=tuple(star_topology.shortest_path("D1", "D3")),
            e2e_ns=milliseconds(8), priority=Priorities.NSH_PL,
            length_bytes=800, period_ns=milliseconds(8),
        )]
        ects = [EctStream("alarm", "D2", "D3",
                          min_interevent_ns=milliseconds(16),
                          length_bytes=1500, possibilities=4)]
        schedule = schedule_period(star_topology, tct, ects)
        gcl = build_gcl(schedule, mode="period",
                        ect_proxies=schedule.meta["ect_proxies"])
        path = tmp_path / "period.json"
        save_deployment(str(path), schedule, gcl)
        loaded_schedule, loaded_gcl = load_deployment(str(path))
        assert loaded_schedule.meta["ect_proxies"] == {"alarm#period": "alarm"}
        assert loaded_gcl.mode == "period"


class TestTraceSerialization:
    def _spans(self):
        from repro.obs import Tracer

        tracer = Tracer(clock=lambda: 0)
        request = tracer.start_span("request", ts_ns=0, stream="a")
        rung = tracer.start_span("rung", parent=request, ts_ns=10,
                                 rung="incremental")
        tracer.finish(rung, ts_ns=50)
        tracer.finish(request, ts_ns=100)
        tracer.event("frame.enqueue", ts_ns=5, frame_id=1, link="D1->SW1")
        return tracer.spans()

    def test_span_round_trip(self):
        from repro.serialization import span_from_dict, span_to_dict

        for span in self._spans():
            data = span_to_dict(span)
            json.dumps(data)  # must be JSON-able
            clone = span_from_dict(data)
            assert clone == span

    def test_save_and_load_trace(self, tmp_path):
        from repro.serialization import load_trace, save_trace

        spans = self._spans()
        path = tmp_path / "trace.jsonl"
        save_trace(str(path), spans)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(spans)  # one JSON object per line
        assert load_trace(str(path)) == spans

    def test_load_skips_blank_lines(self, tmp_path):
        from repro.serialization import load_trace, save_trace

        spans = self._spans()
        path = tmp_path / "trace.jsonl"
        save_trace(str(path), spans)
        path.write_text(path.read_text() + "\n\n")
        assert load_trace(str(path)) == spans

    def test_malformed_line_names_its_number(self, tmp_path):
        from repro.serialization import load_trace

        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok"}\nnot-json\n')
        with pytest.raises(ValueError, match="trace line"):
            load_trace(str(path))
